package lockorder

import "sync"

// engine mirrors the Engine/state-machine lock pair: mu is taken first,
// smMu only while mu is held.
type engine struct {
	//apcm:lockrank=1
	mu sync.RWMutex
	//apcm:lockrank=2
	smMu sync.Mutex
}

// goodOrder follows the declared rank order: sanctioned, silent.
func (e *engine) goodOrder() {
	e.mu.Lock()
	e.smMu.Lock()
	e.smMu.Unlock()
	e.mu.Unlock()
}

// badOrder inverts it.
func (e *engine) badOrder() {
	e.smMu.Lock()
	e.mu.Lock() // want `acquires engine.mu \(rank 1\) while holding engine.smMu \(rank 2\)`
	e.mu.Unlock()
	e.smMu.Unlock()
}

// sequential acquisition — released before the next — makes no edge.
func (e *engine) sequential() {
	e.smMu.Lock()
	e.smMu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// Unranked cycle pair: each of left/right is acquired while the other
// is held, in different functions — a two-stack deadlock.
type left struct{ mu sync.Mutex }
type right struct{ mu sync.Mutex }

func cycleLR(l *left, r *right) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.mu.Lock() // want `lock-order cycle: acquires right.mu while holding left.mu`
	r.mu.Unlock()
}

func cycleRL(l *left, r *right) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l.mu.Lock() // want `lock-order cycle: acquires left.mu while holding right.mu`
	l.mu.Unlock()
}

// Re-acquisition through a call chain: deliver holds state.mu, and the
// callee transitively re-enters detach, which takes state.mu again —
// the broker slow-consumer shutdown shape.
type state struct {
	mu    sync.Mutex
	conns []*wire
}

type wire struct{ mu sync.Mutex }

func (s *state) detach(w *wire) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (w *wire) push(s *state) bool {
	s.detach(w)
	return false
}

func (s *state) deliver(w *wire) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.push(s) // want `may acquire state.mu while already holding it`
}

// deliverAsync hands the re-entrant path to another goroutine: the
// callee's locks are taken on a stack that holds nothing. Silent.
func (s *state) deliverAsync(w *wire) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go w.push(s)
}

// kernel is a hot-path function: no locks at all.
//
//apcm:hotpath
func (e *engine) kernel() int {
	e.mu.RLock() // want `lock acquisition of mu in hot-path function kernel`
	e.mu.RUnlock()
	return 0
}

// staged is the reviewed exception: group-commit staging takes the
// staging lock on the append path by design.
//
//apcm:hotpath
//apcm:locksafe group-commit staging lock, bounded critical section
func (e *engine) staged() {
	e.smMu.Lock()
	e.smMu.Unlock()
}
