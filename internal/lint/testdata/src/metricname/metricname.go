// Fixture for the metricname analyzer: naming, literalness, duplicate
// and hot-path registration rules.
package metricname

import "fmt"

type Registry struct{}

func (r *Registry) Counter(name, help string)                         {}
func (r *Registry) Gauge(name, help string)                           {}
func (r *Registry) Histogram(name, help string)                       {}
func (r *Registry) GaugeFunc(name, help string, f func() float64)     {}
func (r *Registry) CounterFunc(name, help string, f func() float64)   {}
func (r *Registry) HistogramShaped(name, help string, cuts []float64) {}

const constName = "apcm_const_named_total"

func setup(r *Registry) {
	r.Counter("apcm_events_total", "ok")
	r.Counter(constName, "string constants are literal enough")
	r.Gauge("events_gauge", "x")          // want `metric base name "events_gauge" must be apcm_-prefixed`
	r.Counter("apcm_BadCase", "x")        // want `metric base name "apcm_BadCase" must be apcm_-prefixed`
	r.Counter("apcm_events_total", "dup") // want `metric "apcm_events_total" already registered`
	r.Histogram("apcm_latency_ns{stage=\"match\"}", "labels ride on a checked base name")

	name := pick()
	r.Counter(name, "x") // want `metric name is not a literal`

	r.GaugeFunc(fmt.Sprintf("apcm_worker_items{worker=%q}", "0"), "ok", nil)
	r.GaugeFunc(fmt.Sprintf("%s_items", pick()), "x", nil) // want `metric base name "%s_items" must be apcm_-prefixed` `metric label value has unbounded cardinality`
}

// Label cardinality: shard indices are bounded at construction; event
// or subscription content is bounded by nothing.
func shardSetup(r *Registry, shards int, topic string) {
	for i := 0; i < shards; i++ {
		r.Counter(fmt.Sprintf("apcm_shard_events_total{shard=\"%d\"}", i), "bounded: shard index")
	}
	r.Counter(fmt.Sprintf("apcm_topic_events_total{topic=%q}", topic), "x") // want `metric label value has unbounded cardinality \(type string\)`
}

func pick() string { return "apcm_dynamic" }

//apcm:hotpath
func hotRegister(r *Registry) {
	r.Counter("apcm_hot_total", "x") // want `metric registered in hot-path function hotRegister`
}
