package atomicpublish

import "sync/atomic"

type compiled struct {
	n     int
	words []uint64
}

type cluster struct {
	// The published layout pointer: readers Load it locklessly.
	//
	//apcm:publish
	compiled atomic.Pointer[compiled]

	// Published revision counter for the rev-keyed caches.
	//
	//apcm:publish
	rev atomic.Uint64

	// A plain pointer flip has no release fence.
	//
	//apcm:publish
	raw *compiled // want `annotated //apcm:publish but has type \*atomicpublish.compiled`

	mode int32
}

// publish is the sanctioned idiom: build fresh, then Store.
func publish(c *cluster) {
	fresh := &compiled{n: 1}
	fresh.n = 2 // pre-publish construction is fine
	c.compiled.Store(fresh)
	c.rev.Add(1)
}

// badAfterStore mutates the value it already published: a reader that
// Loaded between the two lines observes the mutation racily.
func badAfterStore(c *cluster) {
	fresh := &compiled{n: 1}
	c.compiled.Store(fresh)
	fresh.n = 2 // want `write through fresh after it was published via compiled.Store`
}

// badLoadMutate writes through a Load result, which some other
// goroutine may be reading.
func badLoadMutate(c *cluster) {
	cur := c.compiled.Load()
	cur.n = 3 // want `published data is immutable`
}

// badLoadIndex mutates shared backing storage through a Load result.
func badLoadIndex(c *cluster) {
	cur := c.compiled.Load()
	cur.words[0] = 7 // want `published data is immutable`
}

// rebuild reads the current value and publishes a fresh replacement:
// copy, modify, Store.
func rebuild(c *cluster) {
	cur := c.compiled.Load()
	next := &compiled{n: cur.n + 1}
	c.compiled.Store(next)
}

// rebind re-points the local after Store without touching the published
// value: fine.
func rebind(c *cluster) {
	fresh := &compiled{n: 1}
	c.compiled.Store(fresh)
	fresh = &compiled{n: 2}
	fresh.n = 3
	c.compiled.Store(fresh)
}
