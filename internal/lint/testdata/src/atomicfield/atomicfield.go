// Fixture for the atomicfield analyzer: fields and package variables
// that mix sync/atomic and plain access.
package atomicfield

import "sync/atomic"

type counter struct {
	n    int64
	cold int64
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) load() int64 { return atomic.LoadInt64(&c.n) }

func (c *counter) racyRead() int64 { return c.n } // want `plain access of n`

func (c *counter) racyWrite() { c.n = 0 } // want `plain access of n`

// cold is never touched atomically; plain access is fine.
func (c *counter) coldRead() int64 { return c.cold }

var gen uint32

func bump() { atomic.AddUint32(&gen, 1) }

func racyGen() uint32 { return gen } // want `plain access of gen`

// Handing the address onward is sanctioned — it ends at an atomic call.
func handoff(f func(*uint32)) { f(&gen) }

// Typed atomics: method and address use is sanctioned; whole-value use
// is a copy or clobber.

type stats struct {
	hits atomic.Int64
	last atomic.Pointer[counter]
}

func (s *stats) bump() { s.hits.Add(1) }

func (s *stats) read() int64 { return s.hits.Load() }

func (s *stats) share(f func(*atomic.Int64)) { f(&s.hits) }

func (s *stats) swap(c *counter) { s.last.Store(c) }

func (s *stats) clobber() {
	s.hits = atomic.Int64{} // want `whole-value use of typed atomic hits`
}

func (s *stats) fork() atomic.Int64 {
	return s.hits // want `whole-value use of typed atomic hits`
}

var armed atomic.Bool

func copyArmed() bool {
	snapshot := armed // want `whole-value use of typed atomic armed`
	return snapshot.Load()
}
