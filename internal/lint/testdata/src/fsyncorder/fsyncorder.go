package fsyncorder

// Log mirrors commitlog.Log by name, which is how the analyzer matches
// commit calls, exactly as metricname matches Registry.
type Log struct{}

func (l *Log) Append(b []byte) (int64, error) { return 0, nil }
func (l *Log) Sync() error                    { return nil }

type conn struct{}

func (c *conn) send(frame []byte) bool { return true }

type state struct {
	log *Log
}

// deliver is the sanctioned write-through shape: append, check, send.
//
//apcm:durable
func (s *state) deliver(c *conn, frame []byte) error {
	if _, err := s.log.Append(frame); err != nil {
		return err
	}
	c.send(frame)
	return nil
}

// synced commits via Sync before emitting.
//
//apcm:durable
func (s *state) synced(c *conn, frame []byte) error {
	if err := s.log.Sync(); err != nil {
		return err
	}
	c.send(frame)
	return nil
}

// leaky emits before committing: a crash between the two loses a frame
// a consumer already saw.
//
//apcm:durable
func (s *state) leaky(c *conn, frame []byte) error {
	c.send(frame) // want `not dominated by a commitlog Append/Sync`
	_, err := s.log.Append(frame)
	return err
}

// branchy commits on one path only; the emission is reachable without
// it.
//
//apcm:durable
func (s *state) branchy(c *conn, frame []byte, fastAck bool) {
	if !fastAck {
		s.log.Append(frame)
	}
	c.send(frame) // want `not dominated by a commitlog Append/Sync`
}

// viaHelper commits through a same-package helper: the dominator is
// the helper call.
//
//apcm:durable
func (s *state) viaHelper(c *conn, frame []byte) {
	s.commit(frame)
	c.send(frame)
}

func (s *state) commit(frame []byte) {
	s.log.Append(frame)
}

// viaEmitter emits through an annotated forwarding helper.
//
//apcm:durable
func (s *state) viaEmitter(c *conn, frame []byte) {
	s.pushFrame(c, frame) // want `not dominated by a commitlog Append/Sync`
}

// pushFrame forwards a frame to the wire.
//
//apcm:emits
func (s *state) pushFrame(c *conn, frame []byte) {
	c.send(frame)
}

// bestEffort is not annotated: non-durable delivery may emit freely.
func (s *state) bestEffort(c *conn, frame []byte) {
	c.send(frame)
}
