// Fixture for the ablationconst analyzer: Disable* switch reads in hot
// paths and loops versus legal arming-time reads and writes.
package ablationconst

type config struct {
	DisableHybridPostings bool
	DisableFlatEq         bool
	DisableGroupOrdering  bool
}

type layout struct{ noHybrid bool }

type engine struct {
	cfg config
	lo  layout
}

// Arming-time read: straight-line code outside any hot path or loop.
func arm(e *engine) {
	e.lo.noHybrid = e.cfg.DisableHybridPostings
}

// Writes configure; they are not consultations.
func configure(e *engine) {
	e.cfg.DisableFlatEq = true
}

//apcm:hotpath
func hotRead(e *engine) bool {
	return e.cfg.DisableFlatEq // want `ablation switch DisableFlatEq read in hot-path function hotRead`
}

func loopRead(e *engine, events []int) int {
	n := 0
	for range events {
		if e.cfg.DisableGroupOrdering { // want `ablation switch DisableGroupOrdering read inside a loop in loopRead`
			n++
		}
	}
	return n
}

// Reading the compiled copy inside the loop is the blessed pattern.
func loopReadCompiled(e *engine, events []int) int {
	n := 0
	for range events {
		if e.lo.noHybrid {
			n++
		}
	}
	return n
}
