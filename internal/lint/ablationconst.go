package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ablationSwitches are the Config ablation fields. The compiler copies
// them into the compiled layout exactly once (core.layout / arming);
// per-event code must read the compiled copy, never the live Config —
// a mid-stream Config read would let a concurrently mutated switch
// change kernel behaviour between events of one batch, which is both a
// race and an ablation-methodology bug (the measured configuration no
// longer matches the armed one).
var ablationSwitches = map[string]bool{
	"DisableHybridPostings": true,
	"DisableFlatEq":         true,
	"DisableGroupOrdering":  true,
	"DisableGroupOrder":     true,
	"DisableMemo":           true,
	"DisableBatchMemo":      true,
}

// AblationConst enforces that reading a Disable* ablation switch is a
// compile/arming-time act: reads are forbidden inside //apcm:hotpath
// functions and inside any for/range body (the per-event loops).
// Writes (the field as an assignment target or composite-literal key)
// are configuration, not consultation, and stay legal anywhere outside
// hot paths. Test files are exempt — tests flip switches around loops
// freely.
var AblationConst = &analysis.Analyzer{
	Name:     "ablationconst",
	Doc:      "restrict ablation switch reads to compile/arming sites outside hot loops",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAblationConst,
}

func runAblationConst(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.WithStack([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		sel := n.(*ast.SelectorExpr)
		if !ablationSwitches[sel.Sel.Name] || isTestFile(pass.Fset, sel.Pos()) {
			return true
		}
		// Only struct-field selectors count, not same-named methods or
		// package members.
		if v, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var); !ok || !v.IsField() {
			return true
		}
		if isWriteTarget(sel, stack) {
			return true
		}
		switch where := readContext(stack); where {
		case "":
			return true
		default:
			pass.Reportf(sel.Pos(),
				"ablation switch %s read %s; copy it into the compiled layout at arming time instead",
				sel.Sel.Name, where)
		}
		return true
	})
	return nil, nil
}

// isWriteTarget reports whether sel is being assigned to (cfg.DisableX =
// true) rather than read.
func isWriteTarget(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	if as, ok := parent.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if ast.Unparen(lhs) == sel {
				return true
			}
		}
	}
	return false
}

// readContext classifies the enclosing context of a switch read:
// "" (legal), "in hot-path function F", or "inside a loop in F".
func readContext(stack []ast.Node) string {
	var fnName string
	var inLoop, hot bool
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		case *ast.FuncLit:
			// A literal defined inside a loop still executes per
			// iteration only if called there; stay conservative and keep
			// the loop flag — arming code does not build closures in
			// loops around ablation reads.
		case *ast.FuncDecl:
			fnName = n.Name.Name
			if hasDirective(n.Doc, dirHotPath) {
				hot = true
			}
		}
	}
	if fnName == "" {
		fnName = "a function literal"
	}
	switch {
	case hot:
		return "in hot-path function " + fnName
	case inLoop:
		return "inside a loop in " + fnName
	default:
		return ""
	}
}
