package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// FsyncOrder machine-checks the delivered ⊆ committed theorem from the
// durable broker (DESIGN §9): on a durable delivery path, no frame may
// go to the wire before the commit log has accepted the record. In any
// function annotated //apcm:durable, every *emission* — a call that can
// put a delivery frame on a connection — must be *dominated* by a
// *commit* — a completed commitlog Append/Sync — in the function's CFG.
// Dominance is the right relation: it is exactly "on every execution
// that reaches the emission, the commit already happened", which is the
// crash-safety obligation (a crash after emission must find the record
// in the log).
//
// Emissions are calls to methods named send/Send/writeFrame/WriteFrame,
// to functions annotated //apcm:emits, or to same-package functions
// that transitively reach one. Commits are calls to Append/Sync methods
// on a type named Log (the commitlog), or to same-package functions
// that transitively perform one; a commit inside an `if err != nil`
// failure branch still dominates nothing past its check, so the
// ordinary `rec, err := log.Append(...)` then `if err != nil { return }`
// shape verifies naturally.
//
// The annotation is the boundary: un-annotated functions are not
// durable paths (best-effort delivery may legitimately emit without
// committing), so the analyzer stays silent there. Test files are
// exempt.
var FsyncOrder = &analysis.Analyzer{
	Name:     "fsyncorder",
	Doc:      "require delivery emission in //apcm:durable functions to be dominated by a commitlog Append/Sync",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runFsyncOrder,
}

// emitMethodNames are the direct emission shapes.
var emitMethodNames = map[string]bool{
	"send": true, "Send": true, "writeFrame": true, "WriteFrame": true,
}

// commitMethodNames are the direct commit shapes, on a receiver type
// named Log.
var commitMethodNames = map[string]bool{"Append": true, "Sync": true}

func runFsyncOrder(pass *analysis.Pass) (interface{}, error) {
	flows := funcFlows(pass)
	if len(flows) == 0 {
		return nil, nil
	}
	decls := pkgDecls(pass)
	succs := callSuccs(pass, flows, decls)

	// Annotated //apcm:emits declarations count as direct emitters even
	// when their bodies are opaque wrappers.
	emitSeed := make(map[ast.Node]bool, len(flows))
	commitSeed := make(map[ast.Node]bool, len(flows))
	for _, f := range flows {
		direct := false
		commits := false
		walkOwnBody(f.body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if isEmitCall(pass, call) {
				direct = true
			}
			if isCommitCall(pass, call) {
				commits = true
			}
		})
		if f.decl != nil && hasDirective(f.decl.Doc, dirEmits) {
			direct = true
		}
		emitSeed[f.node()] = direct
		commitSeed[f.node()] = commits
	}
	mayEmit := reachBool(flows, succs, emitSeed)
	mayCommit := reachBool(flows, succs, commitSeed)

	for _, f := range flows {
		if f.decl == nil || !hasDirective(f.decl.Doc, dirDurable) {
			continue
		}
		if isTestFile(pass.Fset, f.decl.Pos()) {
			continue
		}
		checkDurable(pass, f, decls, mayEmit, mayCommit)
	}
	return nil, nil
}

// isEmitCall reports whether call is a direct emission: a method or
// func value with one of the emitter names on a non-package receiver.
// Transitive and //apcm:emits-annotated emissions are resolved through
// the reach summaries (the annotation seeds the declaring body).
func isEmitCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !emitMethodNames[sel.Sel.Name] {
		return false
	}
	_, isPkg := pass.TypesInfo.Uses[selRoot(sel)].(*types.PkgName)
	return !isPkg
}

// isCommitCall reports whether call is a direct commit: Append/Sync on
// a receiver whose (possibly pointer) named type is Log.
func isCommitCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !commitMethodNames[sel.Sel.Name] {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Log"
}

// selRoot returns the leftmost identifier of a selector chain (to tell
// pkg.Send from conn.Send).
func selRoot(sel *ast.SelectorExpr) *ast.Ident {
	for {
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			sel = x
		default:
			return sel.Sel
		}
	}
}

// checkDurable verifies one //apcm:durable function: every emission
// point must be dominated by a commit point.
func checkDurable(pass *analysis.Pass, f *funcFlow, decls map[*types.Func]*ast.FuncDecl, mayEmit, mayCommit map[ast.Node]bool) {
	dom := newDominators(f.g)

	// Collect commit and emission program points. A call is an emission
	// point if it directly emits or its same-package callee may emit; a
	// commit point likewise. A call that both commits and emits (a
	// write-through helper) counts as a commit for everything it
	// dominates and is itself exempt — its own ordering is checked where
	// its body is declared.
	var commits []flowPoint
	type emitAt struct {
		pt   flowPoint
		call *ast.CallExpr
	}
	var emits []emitAt
	walkOwnBody(f.body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		commitHere := isCommitCall(pass, call)
		emitHere := isEmitCall(pass, call)
		if fn := staticCallee(pass, call); fn != nil {
			if d, ok := decls[fn]; ok {
				if mayCommit[d] {
					commitHere = true
				}
				if mayEmit[d] {
					emitHere = true
				}
			}
		}
		pt, ok := pointOf(f.g, call.Pos())
		if !ok {
			return
		}
		if commitHere {
			commits = append(commits, pt)
		}
		if emitHere && !commitHere {
			emits = append(emits, emitAt{pt, call})
		}
	})

	for _, e := range emits {
		dominated := false
		for _, c := range commits {
			if dom.dominates(c, e.pt) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(e.call.Pos(),
				"delivery emission in //%s function %s is not dominated by a commitlog Append/Sync (delivered ⊆ committed, DESIGN §9)",
				dirDurable, f.decl.Name.Name)
		}
	}
}
