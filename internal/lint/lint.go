// Package lint holds apcm's repo-specific go/analysis analyzers: the
// engine's performance and correctness invariants that no compiler
// checks, encoded once and enforced mechanically on every build (CI runs
// the suite as a required step; see cmd/apcm-lint).
//
// The suite machine-checks the rules the hot path rests on:
//
//   - hotpathalloc: functions annotated //apcm:hotpath must stay free of
//     constructs that heap-allocate or defeat inlining — closures, defer,
//     address-taken composite literals, new(), interface conversions,
//     map iteration, and appends to slices that provably start at
//     capacity zero.
//   - scratchrelease: every scratch/pool acquire (Engine.getScratch,
//     sync.Pool Get) must be released on all return paths — the class of
//     bug fixed in PR 3 (group-order counters never flushed because a
//     scratch release path was missed).
//   - atomicfield: a variable or field accessed through sync/atomic
//     free functions must never also be read or written plainly.
//   - ablationconst: the Disable* ablation switches may be read at
//     compile/arming sites only — never in //apcm:hotpath functions and
//     never inside loops.
//   - metricname: metric registrations use literal, unique,
//     apcm_-prefixed snake_case names, outside hot paths, with label
//     values drawn from compile-time-bounded sets.
//   - lockorder: sync.Mutex/RWMutex acquisitions respect the partial
//     order declared by //apcm:lockrank annotations, form no cycles in
//     the package's may-hold-while-acquiring graph, and never occur in
//     //apcm:hotpath functions.
//   - goroutinelife: every `go` statement carries a join/stop edge —
//     WaitGroup.Done, channel close or send, context cancellation — on
//     all paths, or is annotated //apcm:detached.
//   - fsyncorder: in //apcm:durable functions, delivery-frame emission
//     is dominated by a completed commit-log Append/Sync — the
//     machine-checked half of delivered ⊆ committed (DESIGN §9).
//   - atomicpublish: fields annotated //apcm:publish are typed atomics
//     (atomic.Pointer/Value/...), and pointer-flip-published values are
//     not mutated after the Store.
//
// Annotation convention: a directive comment in the doc block of a
// function, e.g.
//
//	// matchHybrid runs the compressed kernel.
//	//
//	//apcm:hotpath
//	func (c *compiled) matchHybrid(...) ...
//
// Directives are ordinary line comments with no space after the slashes,
// so go doc hides them, exactly like //go:noinline.
//
// Run the suite with `make lint`, `go run ./cmd/apcm-lint ./...`, or
// `go vet -vettool=$(which apcm-lint) ./...`. See DESIGN.md §7.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full apcm-lint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc,
		ScratchRelease,
		AtomicField,
		AblationConst,
		MetricName,
		LockOrder,
		GoroutineLife,
		FsyncOrder,
		AtomicPublish,
	}
}

// directive names recognised in doc comments. dirHotPath, dirDurable,
// dirEmits, dirDetached and dirLockSafe annotate functions; dirLockRank
// and dirPublish annotate struct fields.
const (
	dirHotPath  = "apcm:hotpath"
	dirLockRank = "apcm:lockrank" // =N: field's rank in the lock partial order
	dirDurable  = "apcm:durable"  // function is a durable delivery path
	dirEmits    = "apcm:emits"    // function emits delivery frames
	dirPublish  = "apcm:publish"  // field is pointer-flip-published state
	dirDetached = "apcm:detached" // next go statement deliberately has no join edge
	dirLockSafe = "apcm:locksafe" // lock acquire here is reviewed (hotpath slow tail)
)

// hasDirective reports whether doc contains the //name directive (no
// space after the slashes, like //go: directives).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == name || strings.HasPrefix(text, name+" ") {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos lies in a _test.go file. Analyzers that
// encode production-only conventions (metric naming, ablation reads)
// skip test files.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.File(pos).Name(), "_test.go")
}
