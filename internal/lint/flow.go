package lint

// flow.go is the shared flow-analysis substrate for the concurrency and
// durability analyzers (lockorder, goroutinelife, fsyncorder,
// atomicpublish). The original design called for golang.org/x/tools/go/ssa,
// but go/ssa cannot be vendored offline (the repo vendors only the
// analysis/cfg subset the Go toolchain itself ships); for the invariants
// checked here — dominance of one call over another, reachability to a
// return without passing a signal, may-acquire summaries — a CFG with
// dominators over typed ASTs is exactly as expressive, and it keeps
// `make lint` building from the vendored snapshot alone. The substrate
// provides:
//
//   - funcFlows: every function-like body in the package (declarations
//     and literals) paired with its control-flow graph;
//   - dominators: classic iterative dominator sets over a cfg.CFG, with
//     node-granular Dominates (block order breaks intra-block ties);
//   - static call resolution (pkgDecls) from call sites to same-package
//     FuncDecl bodies, the boundary of all interprocedural reasoning;
//   - reach: per-function transitive property computation ("may acquire
//     lock L", "performs a commit", "contains a join edge") as a fixed
//     point over the package's static call graph, with calls under `go`
//     excluded — a spawned goroutine runs the callee on another stack,
//     so the caller neither holds its locks there nor inherits its
//     signals.
//
// All reasoning is deliberately package-local: cross-package calls
// contribute nothing to summaries. That is unsound in general and the
// right trade here — the invariants these analyzers encode (DESIGN §9,
// §10, §11) are each owned by one package, and the annotation
// (`//apcm:durable`, `//apcm:lockrank`, `//apcm:publish`) marks the
// boundary where the reasoning must hold.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/cfg"
)

// funcFlow is one function-like body with its CFG: a declaration or a
// function literal. decl is nil for literals, lit nil for declarations.
type funcFlow struct {
	decl *ast.FuncDecl
	lit  *ast.FuncLit
	body *ast.BlockStmt
	g    *cfg.CFG
}

// node returns the function-like AST node (for identity keying).
func (f *funcFlow) node() ast.Node {
	if f.decl != nil {
		return f.decl
	}
	return f.lit
}

// name describes the function for diagnostics.
func (f *funcFlow) name() string {
	if f.decl != nil {
		return f.decl.Name.Name
	}
	return "a function literal"
}

// funcFlows collects every function body in the package with its CFG,
// in file order. Bodies whose CFG the ctrlflow pass could not build
// (none, in practice) are skipped.
func funcFlows(pass *analysis.Pass) []*funcFlow {
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	var out []*funcFlow
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					if g := cfgs.FuncDecl(n); g != nil {
						out = append(out, &funcFlow{decl: n, body: n.Body, g: g})
					}
				}
			case *ast.FuncLit:
				if g := cfgs.FuncLit(n); g != nil {
					out = append(out, &funcFlow{lit: n, body: n.Body, g: g})
				}
			}
			return true
		})
	}
	return out
}

// pkgDecls maps the package's function objects to their declarations,
// the resolution table for static calls.
func pkgDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// staticCallee resolves call to the function object it statically
// invokes: a plain function, a method on a concrete receiver, or nil for
// builtins, conversions, interface/func-value calls.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		// Method values and package-qualified functions both resolve
		// through the selector identifier. Interface method calls also
		// yield a *types.Func — reject those: the body is unknown.
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if types.IsInterface(sig.Recv().Type()) {
				return nil
			}
		}
		return fn
	}
	return nil
}

// dominators holds the dominator sets of one CFG. Block i's set is
// doms[i], a bitset over block indices.
type dominators struct {
	g    *cfg.CFG
	doms [][]uint64
}

// newDominators computes dominator sets with the classic iterative
// algorithm. CFGs here are function-sized (tens of blocks), so set
// intersection over word slices converges in a handful of passes.
func newDominators(g *cfg.CFG) *dominators {
	n := len(g.Blocks)
	words := (n + 63) / 64
	doms := make([][]uint64, n)
	full := make([]uint64, words)
	for i := range full {
		full[i] = ^uint64(0)
	}
	for i := range doms {
		doms[i] = make([]uint64, words)
		copy(doms[i], full)
	}
	// Entry dominates only itself; everything else starts full.
	entry := int(g.Blocks[0].Index)
	for i := range doms[entry] {
		doms[entry][i] = 0
	}
	doms[entry][entry/64] = 1 << (entry % 64)

	preds := make([][]int, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], int(b.Index))
		}
	}
	tmp := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			i := int(b.Index)
			if i == entry {
				continue
			}
			copy(tmp, full)
			any := false
			for _, p := range preds[i] {
				any = true
				for w := range tmp {
					tmp[w] &= doms[p][w]
				}
			}
			if !any {
				// Unreachable block: keep the full set (vacuous).
				continue
			}
			tmp[i/64] |= 1 << (i % 64)
			for w := range tmp {
				if tmp[w] != doms[i][w] {
					doms[i][w] = tmp[w]
					changed = true
				}
			}
		}
	}
	return &dominators{g: g, doms: doms}
}

// blockDominates reports whether block a dominates block b.
func (d *dominators) blockDominates(a, b int32) bool {
	return d.doms[b][a/64]&(1<<(a%64)) != 0
}

// flowPoint is a node-granular program point: a block and the node's
// index within it.
type flowPoint struct {
	block *cfg.Block
	idx   int
}

// pointOf locates the innermost CFG node containing pos. Nodes are
// statements and control expressions; a call buried in an expression
// maps to the statement node carrying it.
func pointOf(g *cfg.CFG, pos token.Pos) (flowPoint, bool) {
	best := flowPoint{idx: -1}
	var bestSize token.Pos = 1 << 40
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() && n.End()-n.Pos() < bestSize {
				best = flowPoint{block: b, idx: i}
				bestSize = n.End() - n.Pos()
			}
		}
	}
	return best, best.idx >= 0
}

// dominates reports whether program point a dominates program point b:
// strictly earlier in the same block, or in a dominating block.
func (d *dominators) dominates(a, b flowPoint) bool {
	if a.block == b.block {
		return a.idx < b.idx
	}
	return d.blockDominates(a.block.Index, b.block.Index)
}

// reaches reports whether execution can flow from point a to point b:
// later in the same block, or in a block reachable from a's successors
// (a block can reach itself again around a loop).
func reaches(a, b flowPoint) bool {
	if a.block == b.block && a.idx < b.idx {
		return true
	}
	seen := make(map[*cfg.Block]bool)
	queue := append([]*cfg.Block(nil), a.block.Succs...)
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		if blk == b.block {
			return true
		}
		queue = append(queue, blk.Succs...)
	}
	return false
}

// forEachCall walks the calls syntactically inside node n in source
// order, skipping nested function literals (they run on their own
// schedule and are summarised at their capture site) and the spawned
// call of go statements (it runs on another goroutine). Deferred calls
// are visited with deferred=true — they execute on this goroutine, at
// return.
func forEachCall(n ast.Node, fn func(call *ast.CallExpr, deferred bool)) {
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				// Arguments evaluate here; the call itself does not.
				for _, arg := range m.Call.Args {
					walk(arg, deferred)
				}
				return false
			case *ast.DeferStmt:
				for _, arg := range m.Call.Args {
					walk(arg, deferred)
				}
				walk(m.Call.Fun, deferred)
				fn(m.Call, true)
				return false
			case *ast.CallExpr:
				fn(m, deferred)
			}
			return true
		})
	}
	walk(n, false)
}

// funcLitArgs returns the function literals syntactically passed as
// arguments of call (sync.Once.Do(func(){...}), pool.Run(n, func(...){...})):
// the callee may invoke them on this goroutine, so their effects are
// charged to the call site.
func funcLitArgs(call *ast.CallExpr) []*ast.FuncLit {
	var lits []*ast.FuncLit
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
	}
	// Immediately-invoked literal: func(){...}().
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		lits = append(lits, lit)
	}
	return lits
}

// callSuccs builds the static call graph over the package's bodies:
// from each body to the same-package bodies it invokes on this
// goroutine (calls under `go` excluded, literals passed as call
// arguments included).
func callSuccs(pass *analysis.Pass, flows []*funcFlow, decls map[*types.Func]*ast.FuncDecl) map[ast.Node][]ast.Node {
	succs := make(map[ast.Node][]ast.Node, len(flows))
	for _, f := range flows {
		var out []ast.Node
		forEachCall(f.body, func(call *ast.CallExpr, _ bool) {
			if fn := staticCallee(pass, call); fn != nil {
				if d, ok := decls[fn]; ok {
					out = append(out, d)
				}
			}
			for _, lit := range funcLitArgs(call) {
				out = append(out, lit)
			}
		})
		succs[f.node()] = out
	}
	return succs
}

// reach computes, for every function-like body in the package, the
// transitive union of per-body seed values across the static call
// graph: result(f) = seed(f) ∪ result(g) for every same-package g
// statically called from f. Keys of the seed and result maps are the
// *ast.FuncDecl / *ast.FuncLit nodes from funcFlows.
func reach(flows []*funcFlow, succs map[ast.Node][]ast.Node, seed map[ast.Node]map[types.Object]bool) map[ast.Node]map[types.Object]bool {
	result := make(map[ast.Node]map[types.Object]bool, len(flows))
	for _, f := range flows {
		set := make(map[types.Object]bool)
		for o := range seed[f.node()] {
			set[o] = true
		}
		result[f.node()] = set
	}
	for changed := true; changed; {
		changed = false
		for _, f := range flows {
			set := result[f.node()]
			for _, callee := range succs[f.node()] {
				for o := range result[callee] {
					if !set[o] {
						set[o] = true
						changed = true
					}
				}
			}
		}
	}
	return result
}

// reachBool is reach for a single boolean property: result(f) = seed(f)
// ∨ result(g) for every static callee g.
func reachBool(flows []*funcFlow, succs map[ast.Node][]ast.Node, seed map[ast.Node]bool) map[ast.Node]bool {
	result := make(map[ast.Node]bool, len(flows))
	for _, f := range flows {
		result[f.node()] = seed[f.node()]
	}
	for changed := true; changed; {
		changed = false
		for _, f := range flows {
			if result[f.node()] {
				continue
			}
			for _, callee := range succs[f.node()] {
				if result[callee] {
					result[f.node()] = true
					changed = true
					break
				}
			}
		}
	}
	return result
}

// --- directive parsing -------------------------------------------------

// directiveValue extracts the value of a //name=value directive from a
// comment group, reporting whether the directive is present.
func directiveValue(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, name+"="); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// lockRanks scans the package's struct declarations for fields
// annotated //apcm:lockrank=N and returns their declared ranks plus a
// diagnostic label ("Struct.field") per annotated or mutex-typed field.
func lockRanks(pass *analysis.Pass) (ranks map[types.Object]int, labels map[types.Object]string) {
	ranks = make(map[types.Object]int)
	labels = make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					labels[obj] = ts.Name.Name + "." + name.Name
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if v, ok := directiveValue(cg, dirLockRank); ok {
							if r, err := strconv.Atoi(v); err == nil {
								ranks[obj] = r
							} else {
								pass.Reportf(field.Pos(), "malformed //%s=%s directive (want an integer rank)", dirLockRank, v)
							}
						}
					}
				}
			}
			return true
		})
	}
	return ranks, labels
}

// lockLabel names a lock object for diagnostics: "Struct.field" when
// the declaring struct is known, the bare name otherwise.
func lockLabel(labels map[types.Object]string, obj types.Object) string {
	if l, ok := labels[obj]; ok {
		return l
	}
	return obj.Name()
}
