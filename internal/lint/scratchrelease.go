package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

// ScratchRelease is a flow-sensitive check that every scratch/pool
// acquire is paired with a release on all return paths — the class of
// bug PR 3 fixed (a scratch released without flushing its counters on
// one path). Tracked acquire shapes:
//
//	s := e.getScratch()            → e.putScratch(s) (or deferred)
//	r := pool.Get().(*T)           → pool.Put(r) for any sync.Pool
//
// plus, release-wise, any method named release/Release called on the
// acquired variable. A release on any sync.Pool counts (the OSR slab
// recycler legitimately moves boxes between two pools).
//
// Deliberately exempt, to stay honest without interprocedural analysis:
//
//   - values that escape the function (returned, stored into a field,
//     slice, map or channel) — ownership moved, another function
//     releases;
//   - comma-ok asserted Gets (x, _ := p.Get().(*T)) — the nilable form
//     acknowledges manual lifetime management;
//   - paths that end in panic rather than return.
var ScratchRelease = &analysis.Analyzer{
	Name:     "scratchrelease",
	Doc:      "require scratch/pool acquires to be released on every return path",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runScratchRelease,
}

// acquireReleases maps acquire method names to their release method
// names (matched by name so fixtures need not import the engine).
var acquireReleases = map[string][]string{
	"getScratch": {"putScratch"},
}

// genericReleases are accepted for every tracked acquire.
var genericReleases = []string{"release", "Release"}

func runScratchRelease(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
			if body != nil {
				g = cfgs.FuncDecl(n)
			}
		case *ast.FuncLit:
			body = n.Body
			if body != nil {
				g = cfgs.FuncLit(n)
			}
		}
		if body == nil || g == nil {
			return
		}
		checkFuncScratch(pass, body, g)
	})
	return nil, nil
}

// acquireSite is one tracked acquisition: the assignment that captured
// the value and the variable holding it.
type acquireSite struct {
	assign   *ast.AssignStmt
	v        *types.Var
	releases []string // accepted release call names
	label    string   // for diagnostics: "getScratch" or "sync.Pool.Get"
}

func checkFuncScratch(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.CFG) {
	// Inner function literals get their own CFG and their own check; do
	// not double-report their contents here.
	inInner := innerFuncRanges(body)

	var sites []acquireSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) == 0 {
			return true
		}
		if site, ok := acquireOf(pass, assign); ok && !inInner(assign.Pos()) {
			sites = append(sites, site)
		}
		return true
	})
	if len(sites) == 0 {
		return
	}

	for _, site := range sites {
		if escapes(pass, body, site.v, site.assign, inInner) {
			continue
		}
		if deferredRelease(pass, body, site, inInner) {
			continue
		}
		if leakPos, ok := leaksOnSomePath(pass, g, site); ok {
			pass.Reportf(site.assign.Pos(),
				"%s acquired by %s is not released on the return path at %s (missing %s)",
				site.v.Name(), site.label, pass.Fset.Position(leakPos), site.releases[0])
		}
	}
}

// acquireOf recognises a tracked acquire assignment and returns its
// site. Only single-variable captures into plain identifiers count;
// comma-ok type assertions are exempt by design.
func acquireOf(pass *analysis.Pass, assign *ast.AssignStmt) (acquireSite, bool) {
	if len(assign.Rhs) != 1 {
		return acquireSite{}, false
	}
	rhs := ast.Unparen(assign.Rhs[0])
	// Unwrap a plain (non comma-ok) type assertion: pool.Get().(*T).
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		if len(assign.Lhs) == 2 {
			return acquireSite{}, false // comma-ok form: exempt
		}
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(assign.Lhs) != 1 {
		return acquireSite{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return acquireSite{}, false
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return acquireSite{}, false
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return acquireSite{}, false
	}
	if rels, ok := acquireReleases[sel.Sel.Name]; ok {
		return acquireSite{assign: assign, v: v,
			releases: append(rels, genericReleases...), label: sel.Sel.Name}, true
	}
	if sel.Sel.Name == "Get" && isSyncPool(pass.TypesInfo.TypeOf(sel.X)) {
		return acquireSite{assign: assign, v: v,
			releases: append([]string{"Put"}, genericReleases...), label: "sync.Pool.Get"}, true
	}
	return acquireSite{}, false
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// innerFuncRanges returns a predicate for positions inside function
// literals nested in body (excluding body itself).
func innerFuncRanges(body *ast.BlockStmt) func(token.Pos) bool {
	type rng struct{ lo, hi token.Pos }
	var rs []rng
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			rs = append(rs, rng{lit.Pos(), lit.End()})
			return false
		}
		return true
	})
	return func(p token.Pos) bool {
		for _, r := range rs {
			if r.lo <= p && p < r.hi {
				return true
			}
		}
		return false
	}
}

// escapes reports whether v itself leaves the function by a route other
// than a release call: returned, sent, stored into a composite, or
// assigned to anything that is not a plain local variable. Only the
// bare identifier counts — a returned field read (return t.n) does not
// move ownership of t.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var, acq *ast.AssignStmt, inInner func(token.Pos) bool) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isVar(pass, r, v) {
					esc = true
				}
			}
		case *ast.SendStmt:
			if isVar(pass, n.Value, v) {
				esc = true
			}
		case *ast.AssignStmt:
			if n == acq {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isVar(pass, rhs, v) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && !inInner(id.Pos()) {
						if _, isLocal := pass.TypesInfo.ObjectOf(id).(*types.Var); isLocal {
							continue // local alias: conservatively not an escape
						}
					}
				}
				esc = true // stored into a field, index, map or global
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isVar(pass, el, v) {
					esc = true
				}
			}
		}
		return !esc
	})
	return esc
}

// isVar reports whether expr is exactly the variable v (modulo parens).
func isVar(pass *analysis.Pass, expr ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(id) == v
}

// deferredRelease reports whether body contains a defer of an accepted
// release with v as argument or receiver; a deferred release covers
// every path at once.
func deferredRelease(pass *analysis.Pass, body *ast.BlockStmt, site acquireSite, inInner func(token.Pos) bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok || found || inInner(d.Pos()) {
			return !found
		}
		if isReleaseCall(pass, d.Call, site) {
			found = true
		}
		return !found
	})
	return found
}

// isReleaseCall reports whether call is an accepted release of site.v:
// a call to one of the release names with v as an argument, or a
// release method invoked on v itself.
func isReleaseCall(pass *analysis.Pass, call *ast.CallExpr, site acquireSite) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	ok = false
	for _, r := range site.releases {
		if name == r {
			ok = true
			break
		}
	}
	if !ok {
		return false
	}
	if id, isIdent := ast.Unparen(sel.X).(*ast.Ident); isIdent && pass.TypesInfo.ObjectOf(id) == site.v {
		return true // s.release()
	}
	for _, arg := range call.Args {
		if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent && pass.TypesInfo.ObjectOf(id) == site.v {
			return true // e.putScratch(s) / pool.Put(s)
		}
	}
	return false
}

// leaksOnSomePath walks the CFG from the acquire block looking for a
// return reachable without passing a release. It returns the position
// of the offending return.
func leaksOnSomePath(pass *analysis.Pass, g *cfg.CFG, site acquireSite) (token.Pos, bool) {
	// Locate the block holding the acquire and the node index within it.
	var start *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= site.assign.Pos() && site.assign.End() <= n.End() {
				start, startIdx = b, i
			}
		}
	}
	if start == nil {
		return token.NoPos, false
	}
	releasedIn := func(b *cfg.Block, from int) bool {
		for i := from; i < len(b.Nodes); i++ {
			rel := false
			ast.Inspect(b.Nodes[i], func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(pass, call, site) {
					rel = true
				}
				return !rel
			})
			if rel {
				return true
			}
		}
		return false
	}
	if releasedIn(start, startIdx+1) {
		// Released in the straight-line remainder of the acquire block;
		// successors inherit the release.
		return token.NoPos, false
	}
	// BFS from the acquire block's successors; a block that releases
	// closes its subtree, a return block reached first is a leak.
	if ret := start.Return(); ret != nil {
		return ret.Pos(), true
	}
	seen := map[*cfg.Block]bool{start: true}
	queue := append([]*cfg.Block(nil), start.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if releasedIn(b, 0) {
			continue
		}
		if ret := b.Return(); ret != nil {
			return ret.Pos(), true
		}
		queue = append(queue, b.Succs...)
	}
	return token.NoPos, false
}
