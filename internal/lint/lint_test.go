package lint_test

import (
	"path/filepath"
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/streammatch/apcm/internal/lint"
	"github.com/streammatch/apcm/internal/lint/linttest"
)

// TestAnalyzers runs every analyzer over its fixture package and checks
// the diagnostics against the // want comments — both that seeded
// violations fire and that the sanctioned patterns stay silent.
func TestAnalyzers(t *testing.T) {
	for _, a := range lint.Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			linttest.Run(t, filepath.Join("testdata", "src", a.Name), a)
		})
	}
}

// TestSuiteShape pins the suite contents: CI's seeded-violation smoke
// test assumes exactly these analyzers exist, and renaming one silently
// orphans its fixture directory.
func TestSuiteShape(t *testing.T) {
	want := []string{
		"hotpathalloc", "scratchrelease", "atomicfield", "ablationconst", "metricname",
		"lockorder", "goroutinelife", "fsyncorder", "atomicpublish",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	seen := make(map[string]bool)
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		var _ *analysis.Analyzer = a
	}
}
