package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotPathAlloc checks functions annotated //apcm:hotpath — the core and
// bitset kernels, the batch memo, the posting ops — for constructs that
// heap-allocate or defeat the zero-alloc contract gated by alloc_test.go:
//
//   - function literals (closures capture and escape),
//   - defer statements (defer records allocate pre-Go1.22 loops and add
//     fixed overhead per call either way),
//   - address-taken composite literals and new() (heap escapes),
//   - interface conversions (box the concrete value),
//   - map iteration (hash-order walks, per-iteration overhead),
//   - appends to slices that provably start at capacity zero in the
//     function (every other append target — parameters, struct fields,
//     reslices, make results — is assumed presized by the caller).
//
// Arena sub-slicing is recognized as alloc-free: a capacity-clamped
// sub-slice carved from a slab (s := a.words[o:o+n:o+n+slack], or the
// result of a take-style helper) is a view into storage the arena
// already owns, so assigning one to a local and appending into its
// slack never reaches the allocator. Both shapes count as
// capacity-bearing below; appending past the clamp reallocates that
// one slice privately, which is the arena's documented maintenance
// policy (internal/core/arena.go), not a hot-path heap escape.
//
// The analyzer is intentionally intraprocedural: a hot-path function may
// call an unannotated slow-path helper (e.g. the kernelScratch.get miss
// path) that allocates; the boundary is the annotation.
var HotPathAlloc = &analysis.Analyzer{
	Name:     "hotpathalloc",
	Doc:      "reject allocating constructs in //apcm:hotpath functions",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fn := n.(*ast.FuncDecl)
		if fn.Body == nil || !hasDirective(fn.Doc, dirHotPath) {
			return
		}
		checkHotPathBody(pass, fn)
	})
	return nil, nil
}

func checkHotPathBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	unpresized := collectUnpresized(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot-path function %s (function literals capture and escape)", fn.Name.Name)
			return false // the literal itself is the finding; don't cascade
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot-path function %s", fn.Name.Name)
		case *ast.RangeStmt:
			if _, ok := types.Unalias(pass.TypesInfo.TypeOf(n.X)).Underlying().(*types.Map); ok {
				pass.Reportf(n.Pos(), "map iteration in hot-path function %s", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-taken composite literal escapes to the heap in hot-path function %s", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotPathCall(pass, fn, n, unpresized)
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkIfaceConv(pass, fn, pass.TypesInfo.TypeOf(n.Lhs[i]), rhs)
				}
			}
		case *ast.ReturnStmt:
			checkReturnConv(pass, fn, n)
		}
		return true
	})
}

// checkHotPathCall handles the call-shaped violations: new(), interface
// conversions (explicit and via arguments), and un-presized append.
func checkHotPathCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, unpresized map[*types.Var]bool) {
	// Explicit conversion T(x)?
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkIfaceConv(pass, fn, tv.Type, call.Args[0])
		}
		return
	}
	switch funName(pass, call) {
	case "new":
		pass.Reportf(call.Pos(), "new() in hot-path function %s", fn.Name.Name)
		return
	case "append":
		if len(call.Args) > 0 {
			checkAppendPresized(pass, fn, call.Args[0], unpresized)
		}
		return
	case "make", "len", "cap", "copy", "delete", "panic", "print", "println", "min", "max", "clear":
		return
	}
	// Implicit interface conversions at argument positions.
	sig, _ := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T passed whole
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkIfaceConv(pass, fn, pt, arg)
	}
}

// funName returns the name of a plain (builtin or package-level) callee,
// or "" for methods and complex callees.
func funName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

// checkIfaceConv reports src being converted to the interface type dst:
// boxing a concrete value allocates (except untyped nil and constants
// the compiler interns, which are rare enough to flag anyway — a hot
// path should not convert at all).
func checkIfaceConv(pass *analysis.Pass, fn *ast.FuncDecl, dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, ok := types.Unalias(dst).Underlying().(*types.Interface); !ok {
		return
	}
	st := pass.TypesInfo.TypeOf(src)
	if st == nil {
		return
	}
	if _, ok := types.Unalias(st).Underlying().(*types.Interface); ok {
		return // interface-to-interface: no box
	}
	if b, ok := types.Unalias(st).(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	pass.Reportf(src.Pos(), "interface conversion boxes %s in hot-path function %s", st, fn.Name.Name)
}

// checkReturnConv flags concrete values returned as interface results.
func checkReturnConv(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fn.Type.Results
	if results == nil {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, pass.TypesInfo.TypeOf(f.Type))
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // bare return or single multi-value call
	}
	for i, r := range ret.Results {
		checkIfaceConv(pass, fn, resultTypes[i], r)
	}
}

// checkAppendPresized flags append whose destination is a local slice
// that provably starts at capacity zero: declared with no initialiser, a
// nil literal, or a composite literal, and never reassigned from a
// capacity-bearing expression (make, reslice, call, field, parameter).
func checkAppendPresized(pass *analysis.Pass, fn *ast.FuncDecl, dst ast.Expr, unpresized map[*types.Var]bool) {
	id, ok := ast.Unparen(dst).(*ast.Ident)
	if !ok {
		return // fields, index and slice expressions carry caller capacity
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	if unpresized[v] {
		pass.Reportf(dst.Pos(), "append to un-presized slice %s in hot-path function %s (declared empty and never given capacity)", id.Name, fn.Name.Name)
	}
}

// collectUnpresized returns the local slice variables of fn that start
// at capacity zero and are never assigned a capacity-bearing value.
// Parameters and named results always carry caller capacity.
func collectUnpresized(pass *analysis.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	skip := make(map[*types.Var]bool)
	// declared marks when the ident is a declaration site (var, :=); a
	// plain = to a variable never declared in the body targets a
	// parameter, named result or captured outer variable, all of which
	// carry caller capacity and stay untracked.
	note := func(id *ast.Ident, rhs ast.Expr, declared bool) {
		v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok || skip[v] {
			return
		}
		if !declared && !out[v] {
			return
		}
		if _, isSlice := types.Unalias(v.Type()).Underlying().(*types.Slice); !isSlice {
			return
		}
		if capacityBearing(pass, v, rhs) {
			skip[v] = true
			delete(out, v)
			return
		}
		out[v] = true
	}
	// Parameters and named results are never tracked; only Defs inside
	// the body are seen below, so nothing extra to exclude.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				note(name, rhs, true)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						note(id, n.Rhs[i], n.Tok == token.DEFINE)
					}
				}
			} else {
				// Multi-value call assignment: assume capacity-bearing.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
							skip[v] = true
							delete(out, v)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// capacityBearing reports whether rhs gives v usable capacity: anything
// but a nil/empty start or a self-append. make, reslices, calls, fields
// and other variables all count.
func capacityBearing(pass *analysis.Pass, v *types.Var, rhs ast.Expr) bool {
	if rhs == nil {
		return false // var x []T
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.CompositeLit:
		return false // []T{...}: fixed backing, appends past it allocate
	case *ast.CallExpr:
		if funName(pass, e) == "append" && len(e.Args) > 0 {
			if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
				if pass.TypesInfo.ObjectOf(id) == v {
					return false // x = append(x, ...): still growing from zero
				}
			}
		}
		// Function results carry whatever capacity the callee gave
		// them — including arena take-style helpers (takeIDs,
		// takeWords), whose capacity-clamped slab views are the whole
		// point of the arena. make and conversions likewise.
		return true
	case *ast.SliceExpr:
		// Reslices and slab sub-slices: s := a.words[o:o+n:o+n+slack]
		// is a view into arena-owned storage, alloc-free by
		// construction. A zero-slack clamp makes later appends
		// reallocate privately, but that is the arena's maintenance
		// escape hatch, deliberately off the hot path.
		return true
	default:
		return true // selectors, index expressions, other variables
	}
}
