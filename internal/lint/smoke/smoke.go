//go:build apcmlint_smoke

// Package smoke exists to prove the lint gate fires: it seeds exactly
// one violation per analyzer behind the apcmlint_smoke build tag, so
// normal builds and tests never see it, while
//
//	go run ./cmd/apcm-lint -tags apcmlint_smoke ./internal/lint/smoke
//
// must exit nonzero with nine diagnostics — one per analyzer. CI runs
// that as a required step (see .github/workflows/ci.yml): a lint gate
// that cannot fail is indistinguishable from no gate.
package smoke

import (
	"sync"
	"sync/atomic"
)

type thing struct{ n int64 }

// scratch is distinct from thing so the scratchrelease seed's plain
// field reads do not also trip atomicfield (which tracks thing.n).
type scratch struct{ n int }

var pool sync.Pool

// Registry mimics the metrics registry by name, which is how the
// metricname analyzer matches registration calls.
type Registry struct{}

func (r *Registry) Counter(name, help string) {}

type config struct{ DisableFlatEq bool }

// hotDefer seeds a hotpathalloc violation: defer in a hot path.
//
//apcm:hotpath
func hotDefer(f func()) {
	defer f()
}

// leakScratch seeds a scratchrelease violation: the early return path
// never puts t back.
func leakScratch(cond bool) int {
	t := pool.Get().(*scratch)
	if cond {
		return 0
	}
	pool.Put(t)
	return t.n
}

// mixedAccess seeds an atomicfield violation: t.n is incremented
// atomically but read plainly.
func mixedAccess(t *thing) int64 {
	atomic.AddInt64(&t.n, 1)
	return t.n
}

// loopSwitch seeds an ablationconst violation: an ablation switch
// consulted per iteration instead of at arming time.
func loopSwitch(cfg *config, events []int) int {
	n := 0
	for range events {
		if cfg.DisableFlatEq {
			n++
		}
	}
	return n
}

// badMetric seeds a metricname violation: a registration without the
// apcm_ prefix.
func badMetric(r *Registry) {
	r.Counter("smoke_bad_total", "not apcm_-prefixed")
}

// locker hosts the lockorder seed's mutex.
type locker struct{ mu sync.Mutex }

// badRelock seeds a lockorder violation: acquiring a mutex already held
// on the same path (Go mutexes are not reentrant).
func badRelock(l *locker) {
	l.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	l.mu.Unlock()
}

// fireAndForget seeds a goroutinelife violation: the spawned goroutine
// has no join/stop edge and no //apcm:detached annotation.
func fireAndForget(f func()) {
	go func() { f() }()
}

// Log mimics the commit log by type name, which is how the fsyncorder
// analyzer matches Append/Sync commit calls.
type Log struct{}

func (*Log) Append(rec []byte) (uint64, error) { return 0, nil }

type wire struct{}

func (*wire) send(b []byte) bool { return true }

// leakyDeliver seeds an fsyncorder violation: the emission precedes the
// commit, so a crash between them delivers an uncommitted record.
//
//apcm:durable
func leakyDeliver(l *Log, w *wire, b []byte) {
	w.send(b)
	l.Append(b)
}

// published seeds an atomicpublish violation: an //apcm:publish field
// that is not a typed atomic.
type published struct {
	//apcm:publish
	table *thing
}
