//go:build apcmlint_smoke

// Package smoke exists to prove the lint gate fires: it seeds exactly
// one violation per analyzer behind the apcmlint_smoke build tag, so
// normal builds and tests never see it, while
//
//	go run ./cmd/apcm-lint -tags apcmlint_smoke ./internal/lint/smoke
//
// must exit nonzero with five diagnostics. CI runs that as a required
// step (see .github/workflows/ci.yml): a lint gate that cannot fail is
// indistinguishable from no gate.
package smoke

import (
	"sync"
	"sync/atomic"
)

type thing struct{ n int64 }

// scratch is distinct from thing so the scratchrelease seed's plain
// field reads do not also trip atomicfield (which tracks thing.n).
type scratch struct{ n int }

var pool sync.Pool

// Registry mimics the metrics registry by name, which is how the
// metricname analyzer matches registration calls.
type Registry struct{}

func (r *Registry) Counter(name, help string) {}

type config struct{ DisableFlatEq bool }

// hotDefer seeds a hotpathalloc violation: defer in a hot path.
//
//apcm:hotpath
func hotDefer(f func()) {
	defer f()
}

// leakScratch seeds a scratchrelease violation: the early return path
// never puts t back.
func leakScratch(cond bool) int {
	t := pool.Get().(*scratch)
	if cond {
		return 0
	}
	pool.Put(t)
	return t.n
}

// mixedAccess seeds an atomicfield violation: t.n is incremented
// atomically but read plainly.
func mixedAccess(t *thing) int64 {
	atomic.AddInt64(&t.n, 1)
	return t.n
}

// loopSwitch seeds an ablationconst violation: an ablation switch
// consulted per iteration instead of at arming time.
func loopSwitch(cfg *config, events []int) int {
	n := 0
	for range events {
		if cfg.DisableFlatEq {
			n++
		}
	}
	return n
}

// badMetric seeds a metricname violation: a registration without the
// apcm_ prefix.
func badMetric(r *Registry) {
	r.Counter("smoke_bad_total", "not apcm_-prefixed")
}
