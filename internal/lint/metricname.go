package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MetricName checks every metric registration against the exposition
// contract the dashboards and the exposition test rely on:
//
//   - the name argument is a string literal, a string constant, or a
//     fmt.Sprintf with a literal format (dynamic names cannot be
//     audited and defeat the duplicate check);
//   - the base name — the part before any {label="..."} block — is
//     apcm_-prefixed snake_case: ^apcm_[a-z0-9_]+$;
//   - no base name is registered twice in a package with the same
//     label set (double registration either panics or silently splits a
//     series, depending on backend);
//   - registration never happens inside an //apcm:hotpath function —
//     registries take locks and allocate; register at construction;
//   - label values interpolated via Sprintf derive from
//     compile-time-bounded sets: constants and integer expressions
//     (a shard index is bounded by the shard count) are fine, but a
//     non-constant string — an event key, a subscription id, a client
//     name — makes series cardinality proportional to traffic content,
//     which is how exposition endpoints OOM.
//
// Registration calls are matched by method name on any type named
// Registry (Counter, Gauge, Histogram, HistogramShaped, GaugeFunc,
// CounterFunc) so fixtures need not import the engine's metrics
// package. Test files are exempt: tests register scratch metrics under
// arbitrary names.
var MetricName = &analysis.Analyzer{
	Name:     "metricname",
	Doc:      "require unique, literal, apcm_-prefixed snake_case metric names registered off the hot path",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMetricName,
}

var registryMethods = map[string]bool{
	"Counter":         true,
	"Gauge":           true,
	"Histogram":       true,
	"HistogramShaped": true,
	"GaugeFunc":       true,
	"CounterFunc":     true,
}

var metricBaseRE = regexp.MustCompile(`^apcm_[a-z0-9_]+$`)

func runMetricName(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	// Full literal name → first registration position, per package.
	seen := make(map[string]token.Pos)
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		if !isRegistryCall(pass, call) || len(call.Args) == 0 {
			return true
		}
		if isTestFile(pass.Fset, call.Pos()) {
			return true
		}
		if fn := enclosingHotPath(stack); fn != "" {
			pass.Reportf(call.Pos(),
				"metric registered in hot-path function %s; registries lock and allocate — register at construction", fn)
		}
		checkLabelCardinality(pass, call.Args[0])
		name, literal := literalMetricName(pass, call.Args[0])
		if !literal {
			pass.Reportf(call.Args[0].Pos(),
				"metric name is not a literal (or Sprintf of a literal format); dynamic names defeat auditing")
			return true
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !metricBaseRE.MatchString(base) {
			pass.Reportf(call.Args[0].Pos(),
				"metric base name %q must be apcm_-prefixed snake_case (%s)", base, metricBaseRE)
		}
		// Duplicate check only for fully-literal names: a Sprintf name
		// varies by its arguments, so identical formats are fine.
		if !strings.Contains(name, "%") {
			if first, dup := seen[name]; dup {
				pass.Reportf(call.Args[0].Pos(),
					"metric %q already registered at %s", name, pass.Fset.Position(first))
			} else {
				seen[name] = call.Args[0].Pos()
			}
		}
		return true
	})
	return nil, nil
}

// isRegistryCall reports whether call is a registration method on a
// value whose (possibly pointer) type is named Registry.
func isRegistryCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registryMethods[sel.Sel.Name] {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// literalMetricName resolves arg to a compile-time-known name. For
// fmt.Sprintf calls it returns the literal format string (still usable
// for prefix/case checks: verbs sit inside label values, e.g.
// "apcm_pool_worker_items{worker=%q}").
func literalMetricName(pass *analysis.Pass, arg ast.Expr) (string, bool) {
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(arg)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" {
		return "", false
	}
	if pkgID, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
			return "", false
		}
	} else {
		return "", false
	}
	if tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Args[0])]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	return "", false
}

// checkLabelCardinality flags Sprintf label values that are not
// compile-time bounded: every non-format argument must be a constant or
// an expression of integer (or boolean) type. A shard index enumerates
// a set fixed at construction; a string variable enumerates whatever
// the traffic contains.
func checkLabelCardinality(pass *analysis.Pass, arg ast.Expr) {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" {
		return
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
		return
	}
	for _, labelArg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[ast.Unparen(labelArg)]
		if !ok || tv.Value != nil {
			continue // constants are bounded by definition
		}
		if isBoundedLabelType(tv.Type) {
			continue
		}
		pass.Reportf(labelArg.Pos(),
			"metric label value has unbounded cardinality (type %s): labels must derive from compile-time-bounded sets such as a shard index, never event or subscription content", tv.Type)
	}
}

// isBoundedLabelType reports whether t enumerates a set fixed at
// compile/construction time: integers (indices) and booleans.
func isBoundedLabelType(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// enclosingHotPath returns the name of the nearest enclosing
// //apcm:hotpath function, or "".
func enclosingHotPath(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			if hasDirective(fd.Doc, dirHotPath) {
				return fd.Name.Name
			}
			return ""
		}
	}
	return ""
}
