package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/cfg"
)

// AtomicPublish enforces the pointer-flip publication discipline used
// by the compiled-cluster swap, the rev-keyed caches and the EWMA
// arming state (DESIGN §11): state that one goroutine republishes while
// others read it locklessly must be
//
//  1. declared as a typed atomic — a field annotated //apcm:publish
//     whose type is not atomic.Pointer/Value/Int32/.../Bool is a
//     report: a plain pointer flip has no release fence, so readers can
//     observe a partially-constructed value;
//  2. immutable after publish — once a value is handed to Store, the
//     publisher must not write through it again (readers may already
//     hold it), and values obtained from Load must never be written
//     through at all.
//
// The mutation checks are CFG-based within each function: a write
// through a variable that was Stored earlier on some path, or through a
// Load result, is reported. Rebuilding a fresh value and Storing again
// is the sanctioned update idiom. The check is scoped to
// //apcm:publish-annotated fields so ordinary mutable atomics
// (counters, EWMA accumulators that tolerate torn read-modify-write)
// opt out by not opting in.
var AtomicPublish = &analysis.Analyzer{
	Name:     "atomicpublish",
	Doc:      "require //apcm:publish fields to be typed atomics, immutable after Store/Load",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runAtomicPublish,
}

// atomicTypeNames are the sync/atomic typed wrappers acceptable for a
// published field.
var atomicTypeNames = map[string]bool{
	"Pointer": true, "Value": true,
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
}

func runAtomicPublish(pass *analysis.Pass) (interface{}, error) {
	published := publishFields(pass)
	if len(published) == 0 {
		return nil, nil
	}
	flows := funcFlows(pass)
	for _, f := range flows {
		checkPublishFlow(pass, f, published)
	}
	return nil, nil
}

// publishFields collects the //apcm:publish-annotated struct fields,
// reporting the ones whose type is not a typed atomic.
func publishFields(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				annotated := hasDirective(field.Doc, dirPublish) || hasDirective(field.Comment, dirPublish)
				if !annotated {
					continue
				}
				for _, name := range field.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if !isTypedAtomic(obj.Type()) {
						pass.Reportf(field.Pos(),
							"field %s.%s is annotated //%s but has type %s; pointer-flip publication requires a sync/atomic typed value (atomic.Pointer, atomic.Value, ...)",
							ts.Name.Name, name.Name, dirPublish, obj.Type())
						continue
					}
					out[obj] = true
				}
			}
			return true
		})
	}
	return out
}

// isTypedAtomic reports whether t is one of the sync/atomic typed
// wrappers (atomic.Pointer[T], atomic.Value, atomic.Int64, ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// publishedCall recognises x.Store(v) / x.Load() on a published field
// and returns the field object.
func publishedCall(pass *analysis.Pass, call *ast.CallExpr, published map[types.Object]bool, method string) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.ObjectOf(inner.Sel)
	if obj == nil || !published[obj] {
		return nil, false
	}
	return obj, true
}

// checkPublishFlow checks one body for post-publish mutation.
func checkPublishFlow(pass *analysis.Pass, f *funcFlow, published map[types.Object]bool) {
	// storePoints: local variable v → CFG points where v was Stored.
	type storeAt struct {
		pt    flowPoint
		field types.Object
	}
	storePoints := make(map[types.Object][]storeAt)
	// loadVars: local variables bound to a Load() result, with the field.
	loadVars := make(map[types.Object]types.Object)
	// rebinds: points where a tracked variable is re-assigned wholesale,
	// killing the published alias (the old value stays published; the
	// variable now names a fresh one).
	rebinds := make(map[types.Object][]flowPoint)

	walkOwnBody(f.body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if field, ok := publishedCall(pass, n, published, "Store"); ok && len(n.Args) == 1 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && !v.IsField() {
						if pt, ok := pointOf(f.g, n.Pos()); ok {
							storePoints[v] = append(storePoints[v], storeAt{pt, field})
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if field, ok := publishedCall(pass, call, published, "Load"); ok {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
								loadVars[v] = field
							}
						}
					}
				}
			}
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && !v.IsField() {
						if pt, ok := pointOf(f.g, n.Pos()); ok {
							rebinds[v] = append(rebinds[v], pt)
						}
					}
				}
			}
		}
	})
	if len(storePoints) == 0 && len(loadVars) == 0 {
		return
	}

	// Any write through a tracked variable: assignment or inc/dec whose
	// LHS is a selector/index rooted at it.
	walkOwnBody(f.body, func(n ast.Node) {
		var lhs []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			lhs = n.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{n.X}
		default:
			return
		}
		for _, l := range lhs {
			root, isDeref := writeRoot(pass, l)
			if root == nil || !isDeref {
				continue
			}
			if field, loaded := loadVars[root]; loaded {
				pass.Reportf(l.Pos(),
					"write through %s, a value obtained from %s.Load: published data is immutable (copy, modify, Store a fresh value)",
					root.Name(), lockLabel(nil, field))
				continue
			}
			stores := storePoints[root]
			if len(stores) == 0 {
				continue
			}
			mpt, ok := pointOf(f.g, l.Pos())
			if !ok {
				continue
			}
			for _, s := range stores {
				if aliasReaches(s.pt, mpt, rebinds[root]) {
					pass.Reportf(l.Pos(),
						"write through %s after it was published via %s.Store: readers may already hold it (copy, modify, Store a fresh value)",
						root.Name(), lockLabel(nil, s.field))
					break
				}
			}
		}
	})
}

// aliasReaches reports whether execution can flow from the Store at
// start to the mutation at target without passing a rebind of the
// variable — a rebind kills the published alias (the variable names a
// fresh value from then on). Node-granular BFS; blocks are visited once
// (loop re-entries approximate).
func aliasReaches(start, target flowPoint, kills []flowPoint) bool {
	killAt := func(b *cfg.Block, i int) bool {
		for _, k := range kills {
			if k.block == b && k.idx == i {
				return true
			}
		}
		return false
	}
	type scan struct {
		b    *cfg.Block
		from int
	}
	visited := make(map[*cfg.Block]bool)
	queue := []scan{{start.block, start.idx + 1}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		dead := false
		for i := s.from; i < len(s.b.Nodes); i++ {
			if s.b == target.block && i == target.idx {
				return true
			}
			if killAt(s.b, i) {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		for _, succ := range s.b.Succs {
			if !visited[succ] {
				visited[succ] = true
				queue = append(queue, scan{succ, 0})
			}
		}
	}
	return false
}

// writeRoot resolves an assignment target to the local variable it
// writes *through*: v.f = x, v.f.g = x, v[i] = x, *v = x all root at v
// with isDeref=true; a plain v = x rebinds the variable (isDeref=false)
// and is not a mutation of the published value.
func writeRoot(pass *analysis.Pass, expr ast.Expr) (root *types.Var, isDeref bool) {
	deref := false
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			deref = true
			expr = e.X
		case *ast.IndexExpr:
			deref = true
			expr = e.X
		case *ast.StarExpr:
			deref = true
			expr = e.X
		case *ast.Ident:
			v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var)
			if !ok {
				return nil, false
			}
			return v, deref
		default:
			return nil, false
		}
	}
}
