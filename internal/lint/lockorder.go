package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
)

// LockOrder builds the package's lock-acquisition graph — an edge
// h → a wherever a sync.Mutex/RWMutex a may be acquired while h is
// held, directly or through same-package calls — and rejects:
//
//   - rank inversions: fields annotated //apcm:lockrank=N declare the
//     intended partial order (Engine.mu=1 before Engine.smMu=2,
//     broker Server.mu before conn.mu before consumerState.mu); an
//     edge from an equal or higher rank to a lower one is a report at
//     the acquisition site;
//   - cycles among unranked locks: h → a with a path a ⇝ h means two
//     call stacks can interleave into deadlock;
//   - re-acquisition: h → h on a plain Mutex is a self-deadlock (Go
//     mutexes are not reentrant) — the exact shape of the broker bug
//     where a delivery path holding consumerState.mu re-entered detach
//     through the slow-consumer shutdown;
//   - any acquisition inside an //apcm:hotpath function: the match
//     kernels are lock-free by contract; a slow tail that genuinely
//     must lock (commitlog group-commit staging) carries
//     //apcm:locksafe with a justification.
//
// Lock identity is the declaring field or variable object, shared
// across instances — the same deliberate conflation atomicfield uses:
// two instances of conn.mu are one node, so hand-over-hand locking of
// sibling instances reports as re-acquisition and needs an
// //apcm:locksafe annotation or a baseline entry. Calls spawned with
// `go` contribute nothing: the callee's locks are taken on another
// stack, where nothing is held-while-acquiring.
var LockOrder = &analysis.Analyzer{
	Name:     "lockorder",
	Doc:      "enforce //apcm:lockrank order, reject lock cycles and hot-path lock acquisition",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runLockOrder,
}

// lockMethods classifies sync.Mutex/RWMutex methods.
var lockAcquires = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var lockReleases = map[string]bool{"Unlock": true, "RUnlock": true}

// lockOp is a classified mutex method call: the lock object it targets
// and whether it is an exclusive acquire (Lock/TryLock, not RLock).
type lockOp struct {
	obj       types.Object
	acquire   bool
	exclusive bool
	pos       token.Pos
}

// lockEdge is one held-while-acquiring observation.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
	// toExclusive records whether the target acquisition is exclusive;
	// an RLock-while-RLock self-edge is legal (shared readers).
	toExclusive bool
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	flows := funcFlows(pass)
	if len(flows) == 0 {
		return nil, nil
	}
	decls := pkgDecls(pass)
	succs := callSuccs(pass, flows, decls)
	ranks, labels := lockRanks(pass)

	// Per-body may-acquire summaries: the locks a body (or anything it
	// statically calls on this goroutine) may take.
	seed := make(map[ast.Node]map[types.Object]bool, len(flows))
	for _, f := range flows {
		set := make(map[types.Object]bool)
		forEachCall(f.body, func(call *ast.CallExpr, _ bool) {
			if op, ok := classifyLockOp(pass, call); ok && op.acquire {
				set[op.obj] = true
			}
		})
		seed[f.node()] = set
	}
	mayAcquire := reach(flows, succs, seed)

	var edges []lockEdge
	for _, f := range flows {
		// //apcm:locksafe on a function suppresses its own edge
		// emission (reviewed hand-over-hand or staging patterns); its
		// acquisitions still flow into callers' summaries.
		if f.decl == nil || !hasDirective(f.decl.Doc, dirLockSafe) {
			edges = append(edges, lockEdgesOf(pass, f, decls, mayAcquire)...)
		}
		checkHotPathLocks(pass, f)
	}
	reportLockEdges(pass, edges, ranks, labels)
	return nil, nil
}

// classifyLockOp recognises a sync.Mutex/RWMutex Lock-family call on a
// trackable lock (a named field or variable).
func classifyLockOp(pass *analysis.Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	if !lockAcquires[name] && !lockReleases[name] {
		return lockOp{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return lockOp{}, false
	}
	recv := sig.Recv().Type()
	if p, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := types.Unalias(recv).(*types.Named)
	if !ok || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return lockOp{}, false
	}
	obj := lockObject(pass, sel.X)
	if obj == nil {
		return lockOp{}, false
	}
	return lockOp{
		obj:       obj,
		acquire:   lockAcquires[name],
		exclusive: name == "Lock" || name == "TryLock",
		pos:       call.Pos(),
	}, true
}

// lockObject resolves the receiver expression of a mutex method to its
// identity object: the final field of a selector chain (s.mu, c.state.mu)
// or a plain variable. An embedded mutex invoked as s.Lock() resolves to
// the embedded sync.Mutex field via the selection's field path.
func lockObject(pass *analysis.Pass, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var); ok {
			return v
		}
	}
	return nil
}

// lockEdgesOf runs the held-set may-analysis over f's CFG and returns
// the held-while-acquiring edges it observes. in[b] is the union of
// predecessors' out-sets (may-held: an edge that exists on one inbound
// path is still an edge).
func lockEdgesOf(pass *analysis.Pass, f *funcFlow, decls map[*types.Func]*ast.FuncDecl, mayAcquire map[ast.Node]map[types.Object]bool) []lockEdge {
	g := f.g
	n := len(g.Blocks)
	in := make([]map[types.Object]bool, n)
	out := make([]map[types.Object]bool, n)
	for i := range out {
		in[i] = make(map[types.Object]bool)
		out[i] = make(map[types.Object]bool)
	}
	transfer := func(bi int, emit bool, edges *[]lockEdge) {
		held := make(map[types.Object]bool, len(in[bi]))
		for o := range in[bi] {
			held[o] = true
		}
		for _, node := range g.Blocks[bi].Nodes {
			forEachCall(node, func(call *ast.CallExpr, deferred bool) {
				if op, ok := classifyLockOp(pass, call); ok {
					if op.acquire {
						if emit {
							for h := range held {
								*edges = append(*edges, lockEdge{from: h, to: op.obj, pos: call.Pos(), toExclusive: op.exclusive})
							}
						}
						if !deferred {
							held[op.obj] = true
						}
					} else if !deferred {
						// A deferred Unlock releases at return; within
						// the body the lock stays held.
						delete(held, op.obj)
					}
					return
				}
				if emit && len(held) > 0 {
					// Non-lock call: charge the callee's transitive
					// may-acquire set to every held lock.
					targets := make(map[types.Object]bool)
					if fn := staticCallee(pass, call); fn != nil {
						if d, ok := decls[fn]; ok {
							for o := range mayAcquire[d] {
								targets[o] = true
							}
						}
					}
					for _, lit := range funcLitArgs(call) {
						for o := range mayAcquire[lit] {
							targets[o] = true
						}
					}
					for h := range held {
						for a := range targets {
							*edges = append(*edges, lockEdge{from: h, to: a, pos: call.Pos(), toExclusive: true})
						}
					}
				}
			})
		}
		out[bi] = held
	}

	preds := make([][]int, n)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], int(b.Index))
		}
	}
	// Fixed point over block out-sets. The transfer function is monotone
	// in the in-set and in-sets only ever grow (union of predecessor
	// outs), so out-set size is a sound change detector.
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			bi := int(b.Index)
			merged := make(map[types.Object]bool)
			for _, p := range preds[bi] {
				for o := range out[p] {
					merged[o] = true
				}
			}
			in[bi] = merged
			before := len(out[bi])
			transfer(bi, false, nil)
			if len(out[bi]) != before {
				changed = true
			}
		}
	}
	// Emission pass with converged in-sets.
	var edges []lockEdge
	for _, b := range g.Blocks {
		transfer(int(b.Index), true, &edges)
	}
	return edges
}

// checkHotPathLocks reports direct lock acquisition inside
// //apcm:hotpath function declarations not excused by //apcm:locksafe.
func checkHotPathLocks(pass *analysis.Pass, f *funcFlow) {
	if f.decl == nil || !hasDirective(f.decl.Doc, dirHotPath) || hasDirective(f.decl.Doc, dirLockSafe) {
		return
	}
	forEachCall(f.body, func(call *ast.CallExpr, _ bool) {
		if op, ok := classifyLockOp(pass, call); ok && op.acquire {
			pass.Reportf(call.Pos(),
				"lock acquisition of %s in hot-path function %s (annotate //%s with a justification if the slow tail must lock)",
				op.obj.Name(), f.decl.Name.Name, dirLockSafe)
		}
	})
}

// reportLockEdges checks the collected edges against the declared ranks
// and for cycles, reporting each offending acquisition site once.
func reportLockEdges(pass *analysis.Pass, edges []lockEdge, ranks map[types.Object]int, labels map[types.Object]string) {
	// Adjacency for cycle detection, self-edges excluded (reported
	// separately as re-acquisition).
	adj := make(map[types.Object]map[types.Object]bool)
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		if adj[e.from] == nil {
			adj[e.from] = make(map[types.Object]bool)
		}
		adj[e.from][e.to] = true
	}
	pathExists := func(from, to types.Object) bool {
		seen := map[types.Object]bool{}
		stack := []types.Object{from}
		for len(stack) > 0 {
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if o == to {
				return true
			}
			if seen[o] {
				continue
			}
			seen[o] = true
			for s := range adj[o] {
				stack = append(stack, s)
			}
		}
		return false
	}

	type reportKey struct {
		pos      token.Pos
		from, to types.Object
	}
	reported := make(map[reportKey]bool)
	// Deterministic order for stable output.
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		k := reportKey{e.pos, e.from, e.to}
		if reported[k] {
			continue
		}
		switch {
		case e.from == e.to:
			if e.toExclusive {
				reported[k] = true
				pass.Reportf(e.pos,
					"may acquire %s while already holding it (Go mutexes are not reentrant; instance conflation — annotate //%s if hand-over-hand)",
					lockLabel(labels, e.to), dirLockSafe)
			}
		default:
			rf, okf := ranks[e.from]
			rt, okt := ranks[e.to]
			if okf && okt {
				// Both ranked: the declaration arbitrates. The correct
				// direction is sanctioned even if a (reported) reverse
				// edge exists; the wrong direction reports here.
				if rf >= rt {
					reported[k] = true
					pass.Reportf(e.pos,
						"acquires %s (rank %d) while holding %s (rank %d): violates the declared //%s order",
						lockLabel(labels, e.to), rt, lockLabel(labels, e.from), rf, dirLockRank)
				}
				continue
			}
			if pathExists(e.to, e.from) {
				reported[k] = true
				pass.Reportf(e.pos,
					"lock-order cycle: acquires %s while holding %s, but %s is elsewhere acquired while %s is held",
					lockLabel(labels, e.to), lockLabel(labels, e.from), lockLabel(labels, e.from), lockLabel(labels, e.to))
			}
		}
	}
}
