package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/cfg"
)

// GoroutineLife checks that every `go` statement carries a lifecycle:
// the spawned body must reach a join/stop edge — a sync.WaitGroup
// Done/Add, a channel close or send, a channel receive (including
// range-over-channel and select, which block until someone else
// signals), or a context.CancelFunc call — before returning, on all
// paths. A goroutine with no such edge is unobservable: nothing can
// wait for it, drain it, or stop it, which is exactly the leak class
// the stream deadline-flush fix (PR 1) and the broker drain path
// (PR 5) closed by hand.
//
// The discipline, in order of strength:
//
//   - a deferred signal (defer wg.Done(), defer close(done)) covers
//     every path at once and is the preferred idiom;
//   - a non-deferred signal must cover all paths: a return reachable
//     from the entry without passing a signal is reported;
//   - bodies that block on channels (receive, range, select) pass
//     structurally — their termination is controlled by the signaling
//     end, which this analyzer checks at its own `go` site;
//   - signals reached through same-package calls count (go s.flushLoop()
//     where flushLoop defers close(s.done) is clean);
//   - a spawn whose body cannot be seen — a cross-package function or a
//     dynamic function value — must be annotated, as must deliberate
//     fire-and-forget: //apcm:detached on or immediately before the go
//     statement.
//
// Test files are exempt: tests spawn scaffolding goroutines whose
// lifetime is the test binary's.
var GoroutineLife = &analysis.Analyzer{
	Name:     "goroutinelife",
	Doc:      "require every go statement to reach a join/stop edge on all paths",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run:      runGoroutineLife,
}

func runGoroutineLife(pass *analysis.Pass) (interface{}, error) {
	flows := funcFlows(pass)
	if len(flows) == 0 {
		return nil, nil
	}
	decls := pkgDecls(pass)
	succs := callSuccs(pass, flows, decls)

	flowOf := make(map[ast.Node]*funcFlow, len(flows))
	seed := make(map[ast.Node]bool, len(flows))
	for _, f := range flows {
		flowOf[f.node()] = f
		seed[f.node()] = bodyHasDirectSignal(pass, f.body)
	}
	hasSignal := reachBool(flows, succs, seed)

	detached := detachedGoStmts(pass)

	for _, f := range flows {
		walkOwnBody(f.body, func(n ast.Node) {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			if isTestFile(pass.Fset, g.Pos()) || detached[g] {
				return
			}
			checkGoStmt(pass, g, decls, flowOf, hasSignal)
		})
	}
	return nil, nil
}

// walkOwnBody visits the nodes of body excluding nested function
// literals (each literal is its own flow and checks its own spawns).
func walkOwnBody(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkGoStmt verifies one spawn.
func checkGoStmt(pass *analysis.Pass, g *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl, flowOf map[ast.Node]*funcFlow, hasSignal map[ast.Node]bool) {
	var target *funcFlow
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		target = flowOf[lit]
	} else if fn := staticCallee(pass, g.Call); fn != nil {
		if d, ok := decls[fn]; ok {
			target = flowOf[d]
		}
	}
	if target == nil {
		pass.Reportf(g.Pos(),
			"cannot statically see the goroutine body (cross-package or dynamic function), so its join/stop edge is unverifiable; annotate //%s if fire-and-forget",
			dirDetached)
		return
	}
	if !hasSignal[target.node()] {
		pass.Reportf(g.Pos(),
			"goroutine running %s has no join/stop edge (WaitGroup.Done, channel close/send/receive, context cancel); annotate //%s if deliberately fire-and-forget",
			target.name(), dirDetached)
		return
	}
	// Blocking channel structure (receive, range, select) makes the
	// all-paths question moot: the body's exit is gated on the signaling
	// end. Only straight signal-emitting bodies get the path check.
	if bodyBlocksOnChannels(pass, target.body) {
		return
	}
	if pos, leaky := signalLeakPath(pass, target, decls, hasSignal); leaky {
		pass.Reportf(g.Pos(),
			"goroutine running %s may return at %s without reaching its join/stop edge (signal on some paths only; prefer defer)",
			target.name(), pass.Fset.Position(pos))
	}
}

// detachedGoStmts collects the go statements annotated //apcm:detached,
// either as a leading comment or trailing on the same line.
func detachedGoStmts(pass *analysis.Pass) map[*ast.GoStmt]bool {
	out := make(map[*ast.GoStmt]bool)
	for _, file := range pass.Files {
		cm := ast.NewCommentMap(pass.Fset, file, file.Comments)
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			for _, cg := range cm[g] {
				if hasDirective(cg, dirDetached) {
					out[g] = true
				}
			}
			return true
		})
	}
	return out
}

// bodyHasDirectSignal reports whether body syntactically contains a
// join/stop edge of its own (nested literals excluded — they count only
// if invoked, via the call graph).
func bodyHasDirectSignal(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	walkOwnBody(body, func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if isSignalCall(pass, n) {
				found = true
			}
		}
	})
	return found
}

// bodyBlocksOnChannels reports whether body (nested literals excluded)
// contains a blocking channel construct: receive, range over a channel,
// or select.
func bodyBlocksOnChannels(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	walkOwnBody(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
	})
	return found
}

// isSignalCall recognises the call-shaped join/stop edges: close(ch),
// sync.WaitGroup Done/Add, and invoking a context.CancelFunc.
func isSignalCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if t := pass.TypesInfo.TypeOf(call.Fun); t != nil {
		if named, ok := types.Unalias(t).(*types.Named); ok {
			if obj := named.Obj(); obj.Name() == "CancelFunc" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
			(fn.Name() == "Done" || fn.Name() == "Add") {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv := sig.Recv().Type()
				if p, ok := types.Unalias(recv).(*types.Pointer); ok {
					recv = p.Elem()
				}
				if named, ok := types.Unalias(recv).(*types.Named); ok && named.Obj().Name() == "WaitGroup" {
					return true
				}
			}
		}
	}
	return false
}

// nodeSignals reports whether a CFG node carries a signal: a signal
// call (deferred or not), a send statement, or a call into a
// same-package body that transitively signals.
func nodeSignals(pass *analysis.Pass, node ast.Node, decls map[*types.Func]*ast.FuncDecl, hasSignal map[ast.Node]bool) (signals, deferred bool) {
	if _, ok := node.(*ast.SendStmt); ok {
		return true, false
	}
	forEachCall(node, func(call *ast.CallExpr, d bool) {
		hit := isSignalCall(pass, call)
		if !hit {
			if fn := staticCallee(pass, call); fn != nil {
				if decl, ok := decls[fn]; ok && hasSignal[decl] {
					hit = true
				}
			}
		}
		if !hit {
			for _, lit := range funcLitArgs(call) {
				if hasSignal[lit] {
					hit = true
				}
			}
		}
		if hit {
			signals = true
			if d {
				deferred = true
			}
		}
	})
	return signals, deferred
}

// signalLeakPath walks f's CFG looking for a return reachable from the
// entry without passing a signal node. A deferred signal anywhere
// covers all paths. Returns the position of the leaky return.
func signalLeakPath(pass *analysis.Pass, f *funcFlow, decls map[*types.Func]*ast.FuncDecl, hasSignal map[ast.Node]bool) (token.Pos, bool) {
	signalBlocks := make(map[*cfg.Block]bool)
	for _, b := range f.g.Blocks {
		for _, node := range b.Nodes {
			sig, def := nodeSignals(pass, node, decls, hasSignal)
			if def {
				return token.NoPos, false // deferred signal covers every path
			}
			if sig {
				signalBlocks[b] = true
			}
		}
	}
	entry := f.g.Blocks[0]
	seen := make(map[*cfg.Block]bool)
	queue := []*cfg.Block{entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if signalBlocks[b] {
			continue // signal closes this subtree
		}
		if ret := b.Return(); ret != nil {
			return ret.Pos(), true
		}
		queue = append(queue, b.Succs...)
	}
	return token.NoPos, false
}
