// Package faultnet wraps net.Conn and net.Listener with seeded,
// deterministic fault injection for exercising failure paths in-process:
// added latency, partial writes (large writes split into small
// syscalls), byte corruption, hard resets mid-frame, and blackholes
// (the link silently stops passing traffic while the socket stays
// open). Every probabilistic choice draws from a PRNG seeded through
// Options.Seed, so a failing test reproduces exactly by rerunning with
// the printed seed.
//
// The wrapper is transport-agnostic: it composes with net.Pipe as well
// as real TCP connections, and a Listener wrapper applies one Options
// to every accepted connection so server-side links can be degraded
// uniformly.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options selects which faults a wrapped connection injects. The zero
// value injects nothing (a transparent wrapper).
type Options struct {
	// Seed seeds the connection's PRNG (chunk sizes, corruption
	// offsets, latency jitter). Connections derived from one Listener
	// share the seed stream, so a whole scenario replays from one
	// number.
	Seed int64
	// Latency is added before every Write reaches the underlying
	// connection, modelling a slow link. Jitter, when non-zero, adds a
	// uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// MaxChunk, when > 0, splits every Write into chunks of 1..MaxChunk
	// bytes, each its own underlying Write — the partial-write shapes
	// real sockets produce under memory pressure, which exercise every
	// reader's short-read handling.
	MaxChunk int
	// CorruptEveryN, when > 0, flips all bits of one random byte in
	// every Nth Write, modelling in-flight corruption. The caller's
	// buffer is never mutated.
	CorruptEveryN int
	// ResetAfterBytes, when > 0, hard-closes the underlying connection
	// after that many bytes have been written — typically mid-frame,
	// the shape of a peer crash or RST.
	ResetAfterBytes int64
}

// Conn is a net.Conn with fault injection. Wrap builds one; the
// Blackhole, BlackholeIn, BlackholeOut, Heal and Reset methods inject
// scenario-driven faults at test-chosen moments on top of the static
// Options.
type Conn struct {
	nc   net.Conn
	opts Options

	rmu sync.Mutex // serialises PRNG draws and write accounting
	rng *rand.Rand

	written int64
	writes  int64

	gateMu    sync.Mutex
	rgate     chan struct{} // non-nil while inbound is blackholed; closed by Heal
	wgate     chan struct{} // non-nil while outbound is blackholed; closed by Heal
	rbuf      []byte        // bytes drained during an inbound blackhole, replayed after Heal
	rstop     bool          // Heal is retiring the drainer; it must exit on next wakeup
	drainDone chan struct{} // drainer exit signal; Heal joins it before returning

	closeO sync.Once
	closed chan struct{}
}

// Wrap decorates nc with fault injection per opts.
func Wrap(nc net.Conn, opts Options) *Conn {
	return &Conn{
		nc:     nc,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		closed: make(chan struct{}),
	}
}

// Blackhole makes the link silently stop passing traffic in both
// directions: Reads block (until Heal or Close) and Writes are
// swallowed as if the packets vanished in flight. The socket itself
// stays open — exactly the failure heartbeats exist to detect.
func (c *Conn) Blackhole() {
	c.BlackholeIn()
	c.BlackholeOut()
}

// BlackholeIn blackholes only the inbound direction: Reads block until
// Heal or Close while Writes keep flowing. This is the asymmetric
// partition that manufactures a stale leader — the peer still hears us
// (and believes the link healthy) while we hear nothing and declare it
// dead. Bytes the peer sends during the hole are delayed, not dropped:
// a drainer keeps consuming them off the transport into a buffer that
// Read replays after Heal, the late-stale-frame shape an epoch fence
// must reject. Draining (rather than letting backpressure build) is
// what makes the partition asymmetric all the way down: the peer's
// writes keep being acknowledged at the transport level, and a Close
// during the hole sends an orderly FIN instead of an unread-data RST
// that would destroy bytes we wrote just before closing.
func (c *Conn) BlackholeIn() {
	c.gateMu.Lock()
	if c.rgate == nil {
		c.rgate = make(chan struct{})
		c.drainDone = make(chan struct{})
		go c.drainIn(c.rgate, c.drainDone)
	}
	c.gateMu.Unlock()
}

// drainIn consumes inbound bytes into rbuf while the inbound gate is
// up. It blocks in Read with no deadline; Heal interrupts it by setting
// an immediate read deadline, Close by closing the connection. The
// drainer never touches the deadline itself — Heal owns arming and
// clearing it, which is what makes the handoff race-free.
func (c *Conn) drainIn(gate, done chan struct{}) {
	defer close(done)
	buf := make([]byte, 1<<16)
	for {
		n, err := c.nc.Read(buf)
		c.gateMu.Lock()
		if n > 0 {
			c.rbuf = append(c.rbuf, buf[:n]...)
		}
		stop := c.rstop || c.rgate != gate
		c.gateMu.Unlock()
		if stop {
			return
		}
		select {
		case <-c.closed:
			return
		default:
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // spurious deadline wakeup; recheck
			}
			return // transport failure; Reads surface it after Heal
		}
	}
}

// BlackholeOut blackholes only the outbound direction: Writes are
// swallowed (the sender sees success, the bytes vanish) while Reads
// keep flowing — the mirror-image one-way partition.
func (c *Conn) BlackholeOut() {
	c.gateMu.Lock()
	if c.wgate == nil {
		c.wgate = make(chan struct{})
	}
	c.gateMu.Unlock()
}

// Heal reopens a blackholed link in both directions; blocked Reads
// resume, first replaying any bytes the inbound drainer buffered during
// the hole.
func (c *Conn) Heal() {
	// Retire the drainer before opening the read gate: readers stay
	// parked on the gate while we break the drainer out of its blocking
	// Read, join it, and retract the deadline — so neither the drainer's
	// exit nor a waking reader can race Heal for the transport or
	// observe the momentary past-deadline.
	c.gateMu.Lock()
	done := c.drainDone
	if done != nil {
		c.rstop = true
	}
	c.gateMu.Unlock()
	if done != nil {
		c.nc.SetReadDeadline(time.Now())
		<-done
		c.nc.SetReadDeadline(time.Time{})
	}
	c.gateMu.Lock()
	c.rstop = false
	c.drainDone = nil
	if c.rgate != nil {
		close(c.rgate)
		c.rgate = nil
	}
	if c.wgate != nil {
		close(c.wgate)
		c.wgate = nil
	}
	c.gateMu.Unlock()
}

// Reset hard-closes the underlying connection immediately, regardless
// of any in-flight frame boundary.
func (c *Conn) Reset() {
	c.Close()
}

func (c *Conn) writeGated() bool {
	c.gateMu.Lock()
	defer c.gateMu.Unlock()
	return c.wgate != nil
}

func (c *Conn) Read(p []byte) (int, error) {
	for {
		c.gateMu.Lock()
		if c.rgate == nil && len(c.rbuf) > 0 {
			// Replay bytes drained during a healed inbound blackhole
			// before touching the transport again.
			n := copy(p, c.rbuf)
			c.rbuf = c.rbuf[n:]
			c.gateMu.Unlock()
			return n, nil
		}
		gate := c.rgate
		c.gateMu.Unlock()
		if gate == nil {
			return c.nc.Read(p)
		}
		select {
		case <-gate: // healed; retry
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.writeGated() {
		// Swallowed in flight: the sender sees success, the bytes are
		// gone. A healed link therefore resumes desynchronized unless
		// the protocol re-handshakes — which is the point.
		return len(p), nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if d := c.delay(); d > 0 {
		time.Sleep(d)
	}
	c.writes++
	corrupt := c.opts.CorruptEveryN > 0 && c.writes%int64(c.opts.CorruptEveryN) == 0
	if corrupt {
		q := make([]byte, len(p))
		copy(q, p)
		q[c.rng.Intn(len(q))] ^= 0xFF
		p = q
	}
	n := 0
	for n < len(p) {
		chunk := p[n:]
		if c.opts.MaxChunk > 0 && len(chunk) > 1 {
			sz := 1 + c.rng.Intn(c.opts.MaxChunk)
			if sz < len(chunk) {
				chunk = chunk[:sz]
			}
		}
		if lim := c.opts.ResetAfterBytes; lim > 0 && c.written+int64(len(chunk)) > lim {
			if room := lim - c.written; room > 0 {
				m, _ := c.nc.Write(chunk[:room])
				n += m
				c.written += int64(m)
			}
			c.nc.Close()
			return n, net.ErrClosed
		}
		m, err := c.nc.Write(chunk)
		n += m
		c.written += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (c *Conn) delay() time.Duration {
	d := c.opts.Latency
	if c.opts.Jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.opts.Jitter)))
	}
	return d
}

// WrittenBytes reports how many bytes reached the underlying
// connection (post-chunking, pre-kernel).
func (c *Conn) WrittenBytes() int64 {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.written
}

func (c *Conn) Close() error {
	var err error
	c.closeO.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}

func (c *Conn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Listener wraps a net.Listener so every accepted connection carries
// the same fault Options. Accepted connections are retained for
// scenario control (Conns, BlackholeAll, HealAll).
type Listener struct {
	net.Listener
	opts Options

	mu    sync.Mutex
	conns []*Conn
	next  int64 // per-connection seed offset, so streams differ but derive from Seed
}

// WrapListener decorates ln.
func WrapListener(ln net.Listener, opts Options) *Listener {
	return &Listener{Listener: ln, opts: opts}
}

func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	opts := l.opts
	opts.Seed += l.next
	l.next++
	c := Wrap(nc, opts)
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

// Conns returns every connection accepted so far.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// BlackholeAll blackholes every accepted connection.
func (l *Listener) BlackholeAll() {
	for _, c := range l.Conns() {
		c.Blackhole()
	}
}

// HealAll heals every accepted connection.
func (l *Listener) HealAll() {
	for _, c := range l.Conns() {
		c.Heal()
	}
}
