// Package faultnet wraps net.Conn and net.Listener with seeded,
// deterministic fault injection for exercising failure paths in-process:
// added latency, partial writes (large writes split into small
// syscalls), byte corruption, hard resets mid-frame, and blackholes
// (the link silently stops passing traffic while the socket stays
// open). Every probabilistic choice draws from a PRNG seeded through
// Options.Seed, so a failing test reproduces exactly by rerunning with
// the printed seed.
//
// The wrapper is transport-agnostic: it composes with net.Pipe as well
// as real TCP connections, and a Listener wrapper applies one Options
// to every accepted connection so server-side links can be degraded
// uniformly.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options selects which faults a wrapped connection injects. The zero
// value injects nothing (a transparent wrapper).
type Options struct {
	// Seed seeds the connection's PRNG (chunk sizes, corruption
	// offsets, latency jitter). Connections derived from one Listener
	// share the seed stream, so a whole scenario replays from one
	// number.
	Seed int64
	// Latency is added before every Write reaches the underlying
	// connection, modelling a slow link. Jitter, when non-zero, adds a
	// uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// MaxChunk, when > 0, splits every Write into chunks of 1..MaxChunk
	// bytes, each its own underlying Write — the partial-write shapes
	// real sockets produce under memory pressure, which exercise every
	// reader's short-read handling.
	MaxChunk int
	// CorruptEveryN, when > 0, flips all bits of one random byte in
	// every Nth Write, modelling in-flight corruption. The caller's
	// buffer is never mutated.
	CorruptEveryN int
	// ResetAfterBytes, when > 0, hard-closes the underlying connection
	// after that many bytes have been written — typically mid-frame,
	// the shape of a peer crash or RST.
	ResetAfterBytes int64
}

// Conn is a net.Conn with fault injection. Wrap builds one; the
// Blackhole, Heal and Reset methods inject scenario-driven faults at
// test-chosen moments on top of the static Options.
type Conn struct {
	nc   net.Conn
	opts Options

	rmu sync.Mutex // serialises PRNG draws and write accounting
	rng *rand.Rand

	written int64
	writes  int64

	gateMu sync.Mutex
	gate   chan struct{} // non-nil while blackholed; closed by Heal

	closeO sync.Once
	closed chan struct{}
}

// Wrap decorates nc with fault injection per opts.
func Wrap(nc net.Conn, opts Options) *Conn {
	return &Conn{
		nc:     nc,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		closed: make(chan struct{}),
	}
}

// Blackhole makes the link silently stop passing traffic: Reads block
// (until Heal or Close) and Writes are swallowed as if the packets
// vanished in flight. The socket itself stays open — exactly the
// failure heartbeats exist to detect.
func (c *Conn) Blackhole() {
	c.gateMu.Lock()
	if c.gate == nil {
		c.gate = make(chan struct{})
	}
	c.gateMu.Unlock()
}

// Heal reopens a blackholed link; blocked Reads resume.
func (c *Conn) Heal() {
	c.gateMu.Lock()
	if c.gate != nil {
		close(c.gate)
		c.gate = nil
	}
	c.gateMu.Unlock()
}

// Reset hard-closes the underlying connection immediately, regardless
// of any in-flight frame boundary.
func (c *Conn) Reset() {
	c.Close()
}

func (c *Conn) blackholed() (gate chan struct{}, yes bool) {
	c.gateMu.Lock()
	defer c.gateMu.Unlock()
	return c.gate, c.gate != nil
}

func (c *Conn) Read(p []byte) (int, error) {
	for {
		gate, yes := c.blackholed()
		if !yes {
			return c.nc.Read(p)
		}
		select {
		case <-gate: // healed; retry
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	if _, yes := c.blackholed(); yes {
		// Swallowed in flight: the sender sees success, the bytes are
		// gone. A healed link therefore resumes desynchronized unless
		// the protocol re-handshakes — which is the point.
		return len(p), nil
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if d := c.delay(); d > 0 {
		time.Sleep(d)
	}
	c.writes++
	corrupt := c.opts.CorruptEveryN > 0 && c.writes%int64(c.opts.CorruptEveryN) == 0
	if corrupt {
		q := make([]byte, len(p))
		copy(q, p)
		q[c.rng.Intn(len(q))] ^= 0xFF
		p = q
	}
	n := 0
	for n < len(p) {
		chunk := p[n:]
		if c.opts.MaxChunk > 0 && len(chunk) > 1 {
			sz := 1 + c.rng.Intn(c.opts.MaxChunk)
			if sz < len(chunk) {
				chunk = chunk[:sz]
			}
		}
		if lim := c.opts.ResetAfterBytes; lim > 0 && c.written+int64(len(chunk)) > lim {
			if room := lim - c.written; room > 0 {
				m, _ := c.nc.Write(chunk[:room])
				n += m
				c.written += int64(m)
			}
			c.nc.Close()
			return n, net.ErrClosed
		}
		m, err := c.nc.Write(chunk)
		n += m
		c.written += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (c *Conn) delay() time.Duration {
	d := c.opts.Latency
	if c.opts.Jitter > 0 {
		d += time.Duration(c.rng.Int63n(int64(c.opts.Jitter)))
	}
	return d
}

// WrittenBytes reports how many bytes reached the underlying
// connection (post-chunking, pre-kernel).
func (c *Conn) WrittenBytes() int64 {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.written
}

func (c *Conn) Close() error {
	var err error
	c.closeO.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}

func (c *Conn) LocalAddr() net.Addr                { return c.nc.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.nc.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.nc.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.nc.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Listener wraps a net.Listener so every accepted connection carries
// the same fault Options. Accepted connections are retained for
// scenario control (Conns, BlackholeAll, HealAll).
type Listener struct {
	net.Listener
	opts Options

	mu    sync.Mutex
	conns []*Conn
	next  int64 // per-connection seed offset, so streams differ but derive from Seed
}

// WrapListener decorates ln.
func WrapListener(ln net.Listener, opts Options) *Listener {
	return &Listener{Listener: ln, opts: opts}
}

func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	opts := l.opts
	opts.Seed += l.next
	l.next++
	c := Wrap(nc, opts)
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

// Conns returns every connection accepted so far.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// BlackholeAll blackholes every accepted connection.
func (l *Listener) BlackholeAll() {
	for _, c := range l.Conns() {
		c.Blackhole()
	}
}

// HealAll heals every accepted connection.
func (l *Listener) HealAll() {
	for _, c := range l.Conns() {
		c.Heal()
	}
}
