package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a faultnet-wrapped side of a net.Pipe and a reader
// goroutine collecting everything the other side receives.
func pipePair(t *testing.T, opts Options) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	c := Wrap(a, opts)
	t.Cleanup(func() { c.Close(); b.Close() })
	return c, b
}

func readAll(t *testing.T, r net.Conn, into *bytes.Buffer, done chan<- struct{}) {
	t.Helper()
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		into.Write(buf[:n])
		if err != nil {
			close(done)
			return
		}
	}
}

func TestTransparentByDefault(t *testing.T) {
	c, peer := pipePair(t, Options{Seed: 1})
	var got bytes.Buffer
	done := make(chan struct{})
	go readAll(t, peer, &got, done)
	msg := []byte("hello fault injection")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	c.Close()
	<-done
	if !bytes.Equal(got.Bytes(), msg) {
		t.Fatalf("received %q, want %q", got.Bytes(), msg)
	}
}

// TestChunkingDeterministic proves partial writes are reproducible: two
// connections with the same seed split an identical payload into the
// same byte stream (content unchanged), and write counts match.
func TestChunkingDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 100)
	run := func(seed int64) (data []byte, writes int64) {
		a, b := net.Pipe()
		defer b.Close()
		c := Wrap(a, Options{Seed: seed, MaxChunk: 7})
		defer c.Close()
		var got bytes.Buffer
		done := make(chan struct{})
		go readAll(t, b, &got, done)
		if _, err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
		c.Close()
		<-done
		c.rmu.Lock()
		writes = c.writes
		c.rmu.Unlock()
		return got.Bytes(), writes
	}
	d1, w1 := run(42)
	d2, w2 := run(42)
	if !bytes.Equal(d1, payload) || !bytes.Equal(d2, payload) {
		t.Fatal("chunked payload corrupted")
	}
	if w1 != w2 {
		t.Fatalf("write counts differ for equal seeds: %d vs %d", w1, w2)
	}
}

// TestCorruptionFlipsOneByteWithoutMutatingCaller checks the Nth-write
// corruption: the wire sees exactly one altered byte and the caller's
// buffer is untouched.
func TestCorruptionFlipsOneByteWithoutMutatingCaller(t *testing.T) {
	c, peer := pipePair(t, Options{Seed: 7, CorruptEveryN: 2})
	var got bytes.Buffer
	done := make(chan struct{})
	go readAll(t, peer, &got, done)

	first := []byte("first-frame-unharmed")
	second := []byte("second-frame-corrupt")
	keep := append([]byte(nil), second...)
	if _, err := c.Write(first); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	<-done
	if !bytes.Equal(second, keep) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	wire := got.Bytes()
	if !bytes.Equal(wire[:len(first)], first) {
		t.Fatal("first write (not the Nth) was corrupted")
	}
	diff := 0
	for i, b := range wire[len(first):] {
		if b != second[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("second write differs in %d bytes, want exactly 1", diff)
	}
}

// TestResetAfterBytes cuts the connection mid-payload: the peer
// receives exactly the byte budget, then EOF.
func TestResetAfterBytes(t *testing.T) {
	c, peer := pipePair(t, Options{Seed: 3, ResetAfterBytes: 10})
	var got bytes.Buffer
	done := make(chan struct{})
	go readAll(t, peer, &got, done)
	n, err := c.Write(bytes.Repeat([]byte{0xAB}, 64))
	if err == nil {
		t.Fatal("write past the reset budget succeeded")
	}
	if n != 10 {
		t.Fatalf("wrote %d bytes before reset, want 10", n)
	}
	<-done
	if got.Len() != 10 {
		t.Fatalf("peer received %d bytes, want 10", got.Len())
	}
}

// TestBlackholeAndHeal: while blackholed, reads block and writes are
// swallowed; after Heal, traffic flows again.
func TestBlackholeAndHeal(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{Seed: 9})
	defer c.Close()

	c.Blackhole()
	// Swallowed write: succeeds but never reaches the peer.
	if _, err := c.Write([]byte("vanishes")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	// Blocked read: must not return within a short grace window.
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := c.Read(buf)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("read returned during blackhole: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	c.Heal()
	go b.Write([]byte("resumed!"))
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("post-heal read: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked after heal")
	}
}

// TestBlackholeInIsOneWay: an inbound-only blackhole blocks reads while
// writes keep flowing — the asymmetric partition that manufactures a
// stale leader. Bytes sent into the hole are delayed, not dropped: they
// arrive after Heal.
func TestBlackholeInIsOneWay(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{Seed: 11})
	defer c.Close()

	c.BlackholeIn()
	// Outbound still flows.
	var got bytes.Buffer
	done := make(chan struct{})
	go readAll(t, b, &got, done)
	if _, err := c.Write([]byte("outbound-ok")); err != nil {
		t.Fatalf("write through an inbound-only blackhole: %v", err)
	}
	// Inbound blocks; the peer's write parks in the transport.
	readDone := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := c.Read(buf)
		readDone <- err
	}()
	wrote := make(chan struct{})
	go func() { b.Write([]byte("delayed")); close(wrote) }()
	select {
	case err := <-readDone:
		t.Fatalf("read returned during inbound blackhole: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	c.Heal()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("post-heal read: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked after heal")
	}
	<-wrote
	c.Close()
	<-done
	if got.String() != "outbound-ok" {
		t.Fatalf("peer received %q, want %q", got.String(), "outbound-ok")
	}
}

// TestBlackholeOutIsOneWay: an outbound-only blackhole swallows writes
// while reads keep flowing.
func TestBlackholeOutIsOneWay(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{Seed: 12})
	defer c.Close()

	c.BlackholeOut()
	if _, err := c.Write([]byte("vanishes")); err != nil {
		t.Fatalf("outbound-blackholed write errored: %v", err)
	}
	// Inbound still flows.
	go b.Write([]byte("heard"))
	buf := make([]byte, 5)
	a.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("inbound read during outbound blackhole: %v", err)
	}
	if string(buf) != "heard" {
		t.Fatalf("got %q", buf)
	}
	// The swallowed write never surfaces after Heal either (it is gone,
	// not delayed — the sender's bytes were dropped at the wrapper).
	c.Heal()
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, _ := b.Read(make([]byte, 16)); n != 0 {
		t.Fatalf("peer received %d swallowed bytes after heal", n)
	}
}

// TestBlackholedReadUnblocksOnClose: closing the wrapped conn releases
// a reader parked at the blackhole gate.
func TestBlackholedReadUnblocksOnClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{})
	c.Blackhole()
	readDone := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		readDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("read succeeded on a closed blackholed conn")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not unblock on close")
	}
}

// TestListenerWrapsAcceptedConns: connections accepted through a
// wrapped listener are fault-injected and reachable via Conns.
func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(ln, Options{Seed: 5})
	defer fl.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := fl.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- nc
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if len(fl.Conns()) != 1 {
		t.Fatalf("Conns() = %d, want 1", len(fl.Conns()))
	}
	fl.BlackholeAll()
	if _, err := server.Write([]byte("gone")); err != nil {
		t.Fatalf("blackholed server write: %v", err)
	}
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := client.Read(make([]byte, 4)); err == nil {
		t.Fatal("client received bytes through a blackholed link")
	}
	fl.HealAll()
	go server.Write([]byte("back"))
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if string(buf) != "back" {
		t.Fatalf("got %q", buf)
	}
}
