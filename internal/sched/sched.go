// Package sched provides the parallel executor used by the engine: a
// pool of persistent worker goroutines that execute index ranges with an
// atomic cursor. The same pool serves both parallelism axes of the
// paper: intra-event (shard one event's candidate clusters across
// workers) and inter-event (shard an event batch across workers).
//
// Two scheduling refinements keep lanes busy on skewed work. First, the
// cursor grain is auto-tuned: after every parallel run the pool measures
// lane imbalance (max/avg items per lane) and nudges a grain factor —
// imbalanced runs get finer grains (more stealing), balanced runs get
// coarser grains (less cursor contention). Second, RunWeighted accepts
// per-item cost weights and pre-slices the index space into contiguous
// shards of roughly equal total weight, so one expensive item (a
// mega-cluster) no longer serializes a lane while cheap ones idle.
package sched

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain-factor bounds: the pool aims for grainFactor chunks per worker
// lane per run.
const (
	minGrainFactor     = 2
	maxGrainFactor     = 32
	defaultGrainFactor = 8
)

// Pool is a fixed set of worker goroutines. Create with NewPool, release
// with Close. Run may be called concurrently from multiple goroutines;
// jobs are interleaved across the same workers.
type Pool struct {
	workers int
	jobs    chan *job
	done    sync.WaitGroup
	closed  atomic.Bool

	// Observability: Run invocations and per-lane items executed. Lane w
	// belongs to worker goroutine w; lane `workers` counts items drained
	// inline by calling goroutines. Counters are cache-line padded so the
	// hot drain loop never false-shares across workers.
	runs  atomic.Int64
	items []laneCount

	// jobPool recycles job descriptors: a steady-state Run performs no
	// heap allocation.
	jobPool sync.Pool

	// grainFactor is the auto-tuned chunks-per-lane target; imbalance is
	// the float64-bits EWMA of per-run lane imbalance feeding it.
	grainFactor atomic.Int64
	imbalance   atomic.Uint64
}

// laneCount is an atomic counter padded to a cache line.
type laneCount struct {
	n atomic.Int64
	_ [56]byte
}

type job struct {
	p  *Pool
	fn func(worker, idx int)
	// bounds, when non-nil, puts the job in shard mode: shard s covers
	// idx range [bounds[s], bounds[s+1]) and the cursor walks shards.
	bounds    []int32
	boundsBuf []int32 // backing storage for bounds, recycled across runs
	cursor    atomic.Int64
	total     int64 // items (flat mode) or shards (shard mode)
	grain     int64
	wg        sync.WaitGroup
	// lanes counts items per lane for this run only (imbalance feedback).
	// Plain ints: each lane index is written by one goroutine at a time.
	lanes []int64
}

// NewPool returns a pool with the given number of workers; zero or
// negative means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The job channel is buffered so that offering copies never depends
	// on workers being parked at the receive yet (they may not have been
	// scheduled at all right after NewPool on a loaded machine).
	p := &Pool{workers: workers, jobs: make(chan *job, workers), items: make([]laneCount, workers+1)}
	p.grainFactor.Store(defaultGrainFactor)
	p.done.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(w int) {
	defer p.done.Done()
	for j := range p.jobs {
		j.drain(w)
		j.wg.Done()
	}
}

func (j *job) drain(w int) {
	var n int64
	if j.bounds != nil {
		for {
			s := j.cursor.Add(1) - 1
			if s >= j.total {
				break
			}
			lo, hi := int(j.bounds[s]), int(j.bounds[s+1])
			for i := lo; i < hi; i++ {
				j.fn(w, i)
			}
			n += int64(hi - lo)
		}
	} else {
		for {
			start := j.cursor.Add(j.grain) - j.grain
			if start >= j.total {
				break
			}
			end := start + j.grain
			if end > j.total {
				end = j.total
			}
			for i := start; i < end; i++ {
				j.fn(w, int(i))
			}
			n += end - start
		}
	}
	if n != 0 {
		// One add per drain, not per item, keeps counting off the hot path.
		j.p.items[w].n.Add(n)
		j.lanes[w] += n
	}
}

func (p *Pool) getJob(fn func(worker, idx int)) *job {
	j, _ := p.jobPool.Get().(*job)
	if j == nil {
		j = &job{p: p, lanes: make([]int64, p.workers+1)}
	}
	j.fn = fn
	j.bounds = nil
	j.cursor.Store(0)
	for i := range j.lanes {
		j.lanes[i] = 0
	}
	return j
}

// dispatch offers job copies to the workers, participates as the extra
// lane, waits for completion, feeds the imbalance tuner and recycles the
// job. Reuse after wg.Wait is safe: every offered copy has been received
// and Done'd by then, so no worker still references j.
func (p *Pool) dispatch(j *job, copies int) {
	if copies > p.workers {
		copies = p.workers
	}
	// Enqueue one job copy per worker (fewer if the queue backs up under
	// concurrent Runs — the caller covers the difference by draining).
	// Each delivered copy is Done'd exactly once by its receiver; a copy
	// received after the cursor is exhausted drains as a no-op.
offer:
	for i := 0; i < copies; i++ {
		j.wg.Add(1)
		select {
		case p.jobs <- j:
		default:
			j.wg.Add(-1)
			break offer
		}
	}
	// The caller participates as worker id p.workers, so a busy pool
	// never stalls it.
	j.drain(p.workers)
	j.wg.Wait()
	p.tune(j)
	j.fn = nil
	p.jobPool.Put(j)
}

// tune updates the lane-imbalance EWMA from a finished job and nudges
// the grain factor: imbalance wants finer grains, balance wants coarser.
// Concurrent runs may race the read-modify-write; the feedback loop
// tolerates lost updates.
func (p *Pool) tune(j *job) {
	var mx, sum int64
	n := 0
	for _, c := range j.lanes {
		if c > 0 {
			n++
			sum += c
			if c > mx {
				mx = c
			}
		}
	}
	if n < 2 || sum == 0 {
		return
	}
	imb := float64(mx) * float64(n) / float64(sum)
	const d = 0.8
	ew := math.Float64frombits(p.imbalance.Load())
	if ew == 0 {
		ew = imb
	} else {
		ew = d*ew + (1-d)*imb
	}
	p.imbalance.Store(math.Float64bits(ew))
	gf := p.grainFactor.Load()
	switch {
	case ew > 1.25 && gf < maxGrainFactor:
		p.grainFactor.CompareAndSwap(gf, gf+1)
	case ew < 1.05 && gf > minGrainFactor:
		p.grainFactor.CompareAndSwap(gf, gf-1)
	}
}

func (p *Pool) runInline(total int, fn func(worker, idx int)) {
	for i := 0; i < total; i++ {
		fn(0, i)
	}
	p.items[p.workers].n.Add(int64(total))
}

// Run executes fn(worker, idx) for every idx in [0, total), distributing
// ranges across the pool, and blocks until all complete. The calling
// goroutine participates, so Run(total, fn) with a single-worker pool
// still makes progress even under pool contention. fn must be safe for
// concurrent invocation with distinct idx.
func (p *Pool) Run(total int, fn func(worker, idx int)) {
	if total <= 0 {
		return
	}
	p.runs.Add(1)
	// Late callers on a closed pool degrade to inline execution rather
	// than deadlock.
	if p.closed.Load() || total == 1 || p.workers == 1 {
		p.runInline(total, fn)
		return
	}
	j := p.getJob(fn)
	j.total = int64(total)
	j.grain = int64(total) / (int64(p.workers) * p.grainFactor.Load())
	if j.grain < 1 {
		j.grain = 1
	}
	p.dispatch(j, total)
}

// RunWeighted executes fn(worker, idx) for every idx in [0,
// len(weights)), like Run, but pre-slices the index space into
// contiguous shards of roughly equal total weight before handing shards
// to the cursor. Weights are relative costs (non-positive weights count
// as 1); contiguity is preserved so locality-ordered inputs stay
// locality-ordered within a lane.
func (p *Pool) RunWeighted(weights []int64, fn func(worker, idx int)) {
	total := len(weights)
	if total <= 0 {
		return
	}
	p.runs.Add(1)
	if p.closed.Load() || total == 1 || p.workers == 1 {
		p.runInline(total, fn)
		return
	}
	var sum int64
	for _, w := range weights {
		if w < 1 {
			w = 1
		}
		sum += w
	}
	shards := int(p.grainFactor.Load()) * p.workers
	if shards > total {
		shards = total
	}
	target := sum / int64(shards)
	if target < 1 {
		target = 1
	}
	j := p.getJob(fn)
	b := append(j.boundsBuf[:0], 0)
	var acc int64
	for i, w := range weights {
		if w < 1 {
			w = 1
		}
		acc += w
		// Close a shard once it carries its share of the weight, keeping
		// the tail open so we never exceed the shard budget by more than
		// one.
		if acc >= target && i+1 < total && len(b)-1 < shards-1 {
			b = append(b, int32(i+1))
			acc = 0
		}
	}
	b = append(b, int32(total))
	j.boundsBuf = b
	j.bounds = b
	j.total = int64(len(b) - 1)
	j.grain = 1
	p.dispatch(j, int(j.total))
}

// Stats is an observability snapshot of the pool.
type Stats struct {
	Workers    int
	QueueDepth int // job copies waiting in the queue right now
	Runs       int64
	// WorkerItems[w] is the number of task items lane w has executed;
	// the last lane counts items drained inline by calling goroutines.
	// Imbalance across lanes reveals skewed task costs or an
	// under-subscribed pool.
	WorkerItems []int64
	// GrainFactor is the auto-tuned chunks-per-lane target currently in
	// effect, and ShardImbalance the per-run lane imbalance EWMA
	// (max/avg, 1.0 = perfectly balanced) driving it.
	GrainFactor    int64
	ShardImbalance float64
}

// Stats snapshots the pool's counters. Safe to call concurrently with
// Run; the per-lane values are individually atomic, not a consistent
// cut.
func (p *Pool) Stats() Stats {
	st := Stats{
		Workers:        p.workers,
		QueueDepth:     len(p.jobs),
		Runs:           p.runs.Load(),
		WorkerItems:    make([]int64, len(p.items)),
		GrainFactor:    p.grainFactor.Load(),
		ShardImbalance: math.Float64frombits(p.imbalance.Load()),
	}
	for i := range p.items {
		st.WorkerItems[i] = p.items[i].n.Load()
	}
	return st
}

// Close stops the workers. Run observed to start after Close executes
// inline. Close must not be called concurrently with Run; the engine
// enforces this with its writer lock.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
		p.done.Wait()
	}
}
