// Package sched provides the parallel executor used by the engine: a
// pool of persistent worker goroutines that execute index ranges with an
// atomic cursor. The same pool serves both parallelism axes of the
// paper: intra-event (shard one event's candidate clusters across
// workers) and inter-event (shard an event batch across workers).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines. Create with NewPool, release
// with Close. Run may be called concurrently from multiple goroutines;
// jobs are interleaved across the same workers.
type Pool struct {
	workers int
	jobs    chan *job
	done    sync.WaitGroup
	closed  atomic.Bool

	// Observability: Run invocations and per-lane items executed. Lane w
	// belongs to worker goroutine w; lane `workers` counts items drained
	// inline by calling goroutines. Counters are cache-line padded so the
	// hot drain loop never false-shares across workers.
	runs  atomic.Int64
	items []laneCount
}

// laneCount is an atomic counter padded to a cache line.
type laneCount struct {
	n atomic.Int64
	_ [56]byte
}

type job struct {
	p      *Pool
	fn     func(worker, idx int)
	cursor atomic.Int64
	total  int64
	grain  int64
	wg     sync.WaitGroup
}

// NewPool returns a pool with the given number of workers; zero or
// negative means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// The job channel is buffered so that offering copies never depends
	// on workers being parked at the receive yet (they may not have been
	// scheduled at all right after NewPool on a loaded machine).
	p := &Pool{workers: workers, jobs: make(chan *job, workers), items: make([]laneCount, workers+1)}
	p.done.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(w int) {
	defer p.done.Done()
	for j := range p.jobs {
		j.drain(w)
		j.wg.Done()
	}
}

func (j *job) drain(w int) {
	for {
		start := j.cursor.Add(j.grain) - j.grain
		if start >= j.total {
			return
		}
		end := start + j.grain
		if end > j.total {
			end = j.total
		}
		for i := start; i < end; i++ {
			j.fn(w, int(i))
		}
		// One add per chunk, not per item, keeps counting off the hot path.
		j.p.items[w].n.Add(end - start)
	}
}

// Run executes fn(worker, idx) for every idx in [0, total), distributing
// ranges across the pool, and blocks until all complete. The calling
// goroutine participates, so Run(total, fn) with a single-worker pool
// still makes progress even under pool contention. fn must be safe for
// concurrent invocation with distinct idx.
func (p *Pool) Run(total int, fn func(worker, idx int)) {
	if total <= 0 {
		return
	}
	p.runs.Add(1)
	if p.closed.Load() {
		// Late callers degrade to inline execution rather than deadlock.
		for i := 0; i < total; i++ {
			fn(0, i)
		}
		p.items[p.workers].n.Add(int64(total))
		return
	}
	if total == 1 || p.workers == 1 {
		for i := 0; i < total; i++ {
			fn(0, i)
		}
		p.items[p.workers].n.Add(int64(total))
		return
	}
	j := &job{p: p, fn: fn, total: int64(total)}
	j.grain = int64(total) / int64(p.workers*8)
	if j.grain < 1 {
		j.grain = 1
	}
	// Enqueue one job copy per worker (fewer if the queue backs up under
	// concurrent Runs — the caller covers the difference by draining).
	// Each delivered copy is Done'd exactly once by its receiver; a copy
	// received after the cursor is exhausted drains as a no-op.
	copies := p.workers
	if copies > total {
		copies = total
	}
offer:
	for i := 0; i < copies; i++ {
		j.wg.Add(1)
		select {
		case p.jobs <- j:
		default:
			j.wg.Add(-1)
			break offer
		}
	}
	// The caller participates as worker id p.workers, so a busy pool
	// never stalls it.
	j.drain(p.workers)
	j.wg.Wait()
}

// Stats is an observability snapshot of the pool.
type Stats struct {
	Workers    int
	QueueDepth int // job copies waiting in the queue right now
	Runs       int64
	// WorkerItems[w] is the number of task items lane w has executed;
	// the last lane counts items drained inline by calling goroutines.
	// Imbalance across lanes reveals skewed task costs or an
	// under-subscribed pool.
	WorkerItems []int64
}

// Stats snapshots the pool's counters. Safe to call concurrently with
// Run; the per-lane values are individually atomic, not a consistent
// cut.
func (p *Pool) Stats() Stats {
	st := Stats{
		Workers:     p.workers,
		QueueDepth:  len(p.jobs),
		Runs:        p.runs.Load(),
		WorkerItems: make([]int64, len(p.items)),
	}
	for i := range p.items {
		st.WorkerItems[i] = p.items[i].n.Load()
	}
	return st
}

// Close stops the workers. Run observed to start after Close executes
// inline. Close must not be called concurrently with Run; the engine
// enforces this with its writer lock.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
		p.done.Wait()
	}
}
