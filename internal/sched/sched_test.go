package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, total := range []int{0, 1, 7, 64, 1000} {
			var hits = make([]atomic.Int32, total)
			p.Run(total, func(_, i int) { hits[i].Add(1) })
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d total=%d: index %d hit %d times", workers, total, i, hits[i].Load())
				}
			}
		}
		p.Close()
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

func TestWorkerIDsInRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var bad atomic.Int32
	p.Run(10000, func(w, _ int) {
		// Caller participates as worker id p.Workers().
		if w < 0 || w > 4 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d out-of-range worker ids", bad.Load())
	}
}

func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(500, func(_, _ int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if total.Load() != 8*500 {
		t.Fatalf("total = %d, want %d", total.Load(), 8*500)
	}
}

func TestRunAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var n atomic.Int32
	p.Run(10, func(_, _ int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("Run after Close executed %d of 10", n.Load())
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestParallelismActuallyHappens(t *testing.T) {
	// With several workers, at least two distinct worker ids should
	// participate in a large run (statistically certain with a blocking
	// first task per worker).
	p := NewPool(4)
	defer p.Close()
	var mu sync.Mutex
	seen := map[int]bool{}
	var gate sync.WaitGroup
	gate.Add(2)
	done := make(chan struct{})
	go func() { gate.Wait(); close(done) }()
	p.Run(64, func(w, i int) {
		mu.Lock()
		first := !seen[w]
		seen[w] = true
		n := len(seen)
		mu.Unlock()
		if first && n <= 2 {
			gate.Done()
			<-done // hold until a second worker arrives
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("only %d workers participated", len(seen))
	}
}

func TestStatsAccounting(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const total = 1000
	for r := 0; r < 4; r++ {
		p.Run(total, func(w, i int) {})
	}
	st := p.Stats()
	if st.Workers != 3 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if st.Runs != 4 {
		t.Fatalf("Runs = %d, want 4", st.Runs)
	}
	if len(st.WorkerItems) != 4 { // 3 workers + caller lane
		t.Fatalf("WorkerItems lanes = %d, want 4", len(st.WorkerItems))
	}
	var sum int64
	for _, n := range st.WorkerItems {
		sum += n
	}
	if sum != 4*total {
		t.Fatalf("items executed = %d, want %d", sum, 4*total)
	}
	// Single-worker pools execute inline and count into the caller lane.
	p1 := NewPool(1)
	defer p1.Close()
	p1.Run(10, func(w, i int) {})
	st1 := p1.Stats()
	if st1.WorkerItems[1] != 10 || st1.Runs != 1 {
		t.Fatalf("inline accounting: %+v", st1)
	}
}
