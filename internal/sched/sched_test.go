package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		for _, total := range []int{0, 1, 7, 64, 1000} {
			var hits = make([]atomic.Int32, total)
			p.Run(total, func(_, i int) { hits[i].Add(1) })
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d total=%d: index %d hit %d times", workers, total, i, hits[i].Load())
				}
			}
		}
		p.Close()
	}
}

func TestDefaultWorkerCount(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d", p.Workers())
	}
}

func TestWorkerIDsInRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var bad atomic.Int32
	p.Run(10000, func(w, _ int) {
		// Caller participates as worker id p.Workers().
		if w < 0 || w > 4 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d out-of-range worker ids", bad.Load())
	}
}

func TestConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(500, func(_, _ int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if total.Load() != 8*500 {
		t.Fatalf("total = %d, want %d", total.Load(), 8*500)
	}
}

func TestRunAfterClose(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var n atomic.Int32
	p.Run(10, func(_, _ int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("Run after Close executed %d of 10", n.Load())
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestParallelismActuallyHappens(t *testing.T) {
	// With several workers, at least two distinct worker ids should
	// participate in a large run (statistically certain with a blocking
	// first task per worker).
	p := NewPool(4)
	defer p.Close()
	var mu sync.Mutex
	seen := map[int]bool{}
	var gate sync.WaitGroup
	gate.Add(2)
	done := make(chan struct{})
	go func() { gate.Wait(); close(done) }()
	p.Run(64, func(w, i int) {
		mu.Lock()
		first := !seen[w]
		seen[w] = true
		n := len(seen)
		mu.Unlock()
		if first && n <= 2 {
			gate.Done()
			<-done // hold until a second worker arrives
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 {
		t.Fatalf("only %d workers participated", len(seen))
	}
}

func TestStatsAccounting(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const total = 1000
	for r := 0; r < 4; r++ {
		p.Run(total, func(w, i int) {})
	}
	st := p.Stats()
	if st.Workers != 3 {
		t.Fatalf("Workers = %d", st.Workers)
	}
	if st.Runs != 4 {
		t.Fatalf("Runs = %d, want 4", st.Runs)
	}
	if len(st.WorkerItems) != 4 { // 3 workers + caller lane
		t.Fatalf("WorkerItems lanes = %d, want 4", len(st.WorkerItems))
	}
	var sum int64
	for _, n := range st.WorkerItems {
		sum += n
	}
	if sum != 4*total {
		t.Fatalf("items executed = %d, want %d", sum, 4*total)
	}
	// Single-worker pools execute inline and count into the caller lane.
	p1 := NewPool(1)
	defer p1.Close()
	p1.Run(10, func(w, i int) {})
	st1 := p1.Stats()
	if st1.WorkerItems[1] != 10 || st1.Runs != 1 {
		t.Fatalf("inline accounting: %+v", st1)
	}
}

func TestRunWeightedCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(workers)
		for _, total := range []int{1, 2, 7, 64, 513} {
			weights := make([]int64, total)
			for i := range weights {
				weights[i] = int64(i % 17) // includes zero weights
			}
			var hits = make([]atomic.Int32, total)
			p.RunWeighted(weights, func(_, i int) { hits[i].Add(1) })
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d total=%d: index %d hit %d times", workers, total, i, hits[i].Load())
				}
			}
		}
		p.Close()
	}
}

func TestRunWeightedSplitsHeavyHead(t *testing.T) {
	// One mega-item followed by many cheap items: weighted sharding must
	// put the mega-item in its own shard instead of bundling a uniform
	// 1/(workers*factor) slice of the index space with it.
	p := NewPool(4)
	defer p.Close()
	weights := make([]int64, 256)
	weights[0] = 1 << 20
	for i := 1; i < len(weights); i++ {
		weights[i] = 1
	}
	// Behavioural check: the heavy item spins until every cheap item has
	// run. If the greedy cut failed to isolate it in its own shard, the
	// cheap items sharing its shard could never run and this would hang.
	done := make(chan struct{})
	var cheapDone atomic.Int32
	go func() {
		p.RunWeighted(weights, func(_, i int) {
			if i == 0 {
				// Wait until every cheap item has run: impossible if they
				// share the heavy item's lane-sequential shard.
				for cheapDone.Load() < int32(len(weights)-1) {
					runtime.Gosched()
				}
				return
			}
			cheapDone.Add(1)
		})
		close(done)
	}()
	<-done
}

func TestGrainFactorStaysBounded(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for r := 0; r < 200; r++ {
		p.Run(1024, func(w, i int) {
			if i == 0 {
				time.Sleep(50 * time.Microsecond) // skew one item
			}
		})
	}
	st := p.Stats()
	if st.GrainFactor < minGrainFactor || st.GrainFactor > maxGrainFactor {
		t.Fatalf("grain factor %d out of bounds [%d, %d]", st.GrainFactor, minGrainFactor, maxGrainFactor)
	}
	if st.ShardImbalance < 0 {
		t.Fatalf("negative imbalance %f", st.ShardImbalance)
	}
}

func TestRunSteadyStateDoesNotAllocate(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var sink atomic.Int64
	fn := func(_, i int) { sink.Add(int64(i)) }
	for i := 0; i < 10; i++ {
		p.Run(128, fn) // warm the job pool
	}
	avg := testing.AllocsPerRun(100, func() { p.Run(128, fn) })
	// The job descriptor is pooled; tolerate the occasional sync.Pool
	// refill under GC but not per-run garbage.
	if avg > 0.5 {
		t.Fatalf("Run allocates %.2f objects per call in steady state", avg)
	}
}
