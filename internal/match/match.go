// Package match defines the contract shared by every matching algorithm
// in the repository: the naive SCAN, the COUNTING inverted index, the
// BE-Tree, and the compressed matchers. The benchmark harness and the
// cross-algorithm equivalence tests are written purely against this
// interface.
package match

import "github.com/streammatch/apcm/expr"

// Matcher indexes Boolean expressions and reports, for each event, the
// ids of every expression the event satisfies (per the reference
// semantics of expr.Expression.MatchesEvent).
//
// Matchers are single-writer: Insert and Delete must not race with each
// other or with Match unless the concrete type documents otherwise. The
// parallel engines layered on top provide their own synchronisation.
type Matcher interface {
	// Insert adds x to the index. Inserting an id that is already present
	// is an error.
	Insert(x *expr.Expression) error

	// Delete removes the expression with the given id, reporting whether
	// it was present.
	Delete(id expr.ID) bool

	// MatchAppend appends the ids of all matching expressions to dst and
	// returns it. Order is unspecified; ids are unique per call.
	MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID

	// Size returns the number of indexed expressions.
	Size() int

	// ForEach visits every live expression in unspecified order. fn
	// returning false stops the walk. ForEach must not run concurrently
	// with Insert or Delete.
	ForEach(fn func(*expr.Expression) bool)
}

// MemReporter is implemented by matchers that can estimate their heap
// footprint; the memory/compression experiment (E9) uses it.
type MemReporter interface {
	MemBytes() int64
}
