package bench

import (
	"fmt"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/stats"
	"github.com/streammatch/apcm/shard"
	"github.com/streammatch/apcm/workload"
)

// E19: the sharded matching tier (shard.Group) swept over subscription
// count × shard count. This is the scaling experiment behind DESIGN.md
// §10 and the README's scaling section; BENCH_pr7.json holds a
// committed run.

func init() {
	register(e19())
}

// defaultShardCounts is the E19 shard-count axis when Config.Shards is
// unset.
var defaultShardCounts = []int{1, 2, 4, 8, 16}

// batchMatcher is the batch surface E19 measures through — satisfied by
// both *apcm.Engine and *shard.Group, though E19 always builds groups
// (a 1-shard group delegates directly, so the facade itself is on the
// baseline too and the sweep isolates sharding, not wrapper overhead).
type batchMatcher interface {
	MatchAppend([]expr.ID, *expr.Event) []expr.ID
	MatchBatchInto([]*expr.Event, *apcm.BatchResult)
}

// groupThroughputN mirrors batchThroughputN over the group surface:
// sustained MatchBatchInto replay with a reused result until minDur.
func groupThroughputN(m batchMatcher, events []*expr.Event, batch int, minDur time.Duration) (float64, int) {
	var r apcm.BatchResult
	warm := len(events)
	if warm > 2*batch {
		warm = 2 * batch
	}
	m.MatchBatchInto(events[:warm], &r)

	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		for off := 0; off < len(events); off += batch {
			end := off + batch
			if end > len(events) {
				end = len(events)
			}
			m.MatchBatchInto(events[off:end], &r)
			n += end - off
			if n >= batch && time.Since(start) >= minDur {
				break
			}
		}
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0, n
	}
	return float64(n) / sec, n
}

// groupP99 measures single-event match latency over the group surface
// and returns the p99 in nanoseconds. Latency is measured on the
// single-event path — the one a broker publish takes — not the batch
// kernel the throughput numbers drive.
func groupP99(m batchMatcher, events []*expr.Event, minDur time.Duration) float64 {
	h := stats.NewLatencyHistogram()
	var dst []expr.ID
	for _, ev := range events[:min(64, len(events))] { // warm
		dst = m.MatchAppend(dst[:0], ev)
	}
	start := time.Now()
	for i := 0; time.Since(start) < minDur || h.Count() < 256; i++ {
		ev := events[i%len(events)]
		t0 := time.Now()
		dst = m.MatchAppend(dst[:0], ev)
		h.AddDuration(time.Since(t0))
		if h.Count() >= 1<<20 {
			break
		}
	}
	return h.Quantile(0.99)
}

// buildGroup streams nsubs workload expressions into a fresh group and
// precompiles it. Subscriptions are generated one at a time — never
// materialised as a slice — so the build's transient memory stays flat
// at multi-million counts (the index itself is the footprint).
func buildGroup(cfg Config, shards, nsubs int, p workload.Params) (*shard.Group, *workload.Generator, error) {
	g, err := workload.New(p)
	if err != nil {
		return nil, nil, err
	}
	grp, err := shard.New(shard.Options{Shards: shards, Workers: cfg.Workers, Metrics: cfg.Metrics})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < nsubs; i++ {
		if err := grp.Subscribe(g.Expression()); err != nil {
			grp.Close()
			return nil, nil, err
		}
	}
	grp.Prepare()
	return grp, g, nil
}

// ---------------------------------------------------------------- E19

func e19() Experiment {
	return Experiment{
		ID:     "E19",
		Title:  "Sharded matching tier: subscriptions × shard count",
		Expect: "multi-shard groups overtake the 1-shard baseline as subscription count grows (per-shard indexes shrink and fan-out parallelises across cores); on a single core the win collapses to index-size effects and fan-out overhead (ours: beyond-paper scaling tier)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			shardCounts := cfg.Shards
			if len(shardCounts) == 0 {
				shardCounts = defaultShardCounts
			}
			// At -scale 50 the size axis reaches the target sweep:
			// 100k, 500k, 1M, 2.5M and 5M subscriptions.
			sizes := []int{
				cfg.n(2000, 200),
				cfg.n(10000, 400),
				cfg.n(20000, 600),
				cfg.n(50000, 800),
				cfg.n(100000, 1000),
			}
			p := baseParams(cfg.Seed)
			// Bound the plant reservoir so event generation is O(1) in
			// subscription count (same default as cmd/apcm-gen).
			p.PlantPoolSize = 65536

			t := NewTable("E19: shard.Group match throughput, subscriptions × shards",
				"subs", "shards", "events/s", "p99 µs", "vs 1 shard", "imbalance")
			for _, nsubs := range sizes {
				nev := cfg.n(2000, 200)
				if nev > nsubs {
					nev = nsubs
				}
				var base float64
				for _, sc := range shardCounts {
					grp, g, err := buildGroup(cfg, sc, nsubs, p)
					if err != nil {
						return fmt.Errorf("E19 %d subs × %d shards: %w", nsubs, sc, err)
					}
					events := g.Events(nev)
					rate, _ := groupThroughputN(grp, events, 256, cfg.MinMeasure)
					p99 := groupP99(grp, events, cfg.MinMeasure/4)
					imb := grp.Stats().Imbalance
					grp.Close()
					if sc == shardCounts[0] {
						base = rate
					}
					speedup := "-"
					if base > 0 {
						speedup = fmt.Sprintf("%.2fx", rate/base)
					}
					t.AddRow(fmt.Sprintf("%d", nsubs), fmt.Sprintf("%d", sc),
						FormatRate(rate), fmt.Sprintf("%.1f", p99/1e3),
						speedup, fmt.Sprintf("%.2f", imb))
				}
			}
			emit(cfg, t)
			return nil
		},
	}
}
