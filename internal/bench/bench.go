// Package bench is the experiment harness: every table and figure of
// the evaluation (E1–E14, see DESIGN.md §4) plus the beyond-paper
// ablations (E15–E18) is a named, runnable experiment that regenerates
// the corresponding rows/series. The
// cmd/apcm-bench binary and the repository-level Go benchmarks are thin
// wrappers over this package.
//
// Sizes are expressed at Scale=1 (seconds-per-experiment on a laptop)
// and multiply with Config.Scale; the paper's absolute sizes (millions
// of subscriptions) are reached with large scales. The reproduction
// target is the shape of each curve, not the authors' absolute numbers.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/metrics"
	"github.com/streammatch/apcm/workload"
)

// Config parameterises an experiment run.
type Config struct {
	// Out receives the experiment's table.
	Out io.Writer
	// Scale multiplies workload sizes; 1.0 is the CI-friendly default.
	Scale float64
	// Workers is the engine worker count (0 = GOMAXPROCS).
	Workers int
	// Seed drives workload generation.
	Seed int64
	// MinMeasure is the minimum wall-clock time spent per data point.
	MinMeasure time.Duration
	// CSV emits tables as CSV instead of aligned text.
	CSV bool
	// Shards is the shard-count axis of the sharding sweep (E19).
	// Nil/empty means the default {1, 2, 4, 8, 16}.
	Shards []int
	// Metrics, when non-nil, is attached to every engine the experiments
	// build, so a live scrape endpoint can watch a long run.
	Metrics *metrics.Registry
}

// emit renders a finished table according to the configured format.
func emit(cfg Config, t *Table) {
	if cfg.CSV {
		t.FprintCSV(cfg.Out)
		return
	}
	t.Fprint(cfg.Out)
}

func (c *Config) sanitize() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinMeasure <= 0 {
		c.MinMeasure = 200 * time.Millisecond
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// n scales a base count, with a floor of lo.
func (c *Config) n(base, lo int) int {
	v := int(float64(base) * c.Scale)
	if v < lo {
		v = lo
	}
	return v
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the experiment key from DESIGN.md (E1..E14).
	ID string
	// Title is the figure/table caption.
	Title string
	// Expect summarises the shape the paper's evaluation reports, which
	// EXPERIMENTS.md compares against.
	Expect string
	// Run executes the experiment and writes its table to cfg.Out.
	Run func(cfg Config) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in numeric id order (E1, E2, ... E18),
// regardless of registration order across files.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return expNum(out[i].ID) < expNum(out[j].ID) })
	return out
}

func expNum(id string) int {
	n := 0
	for i := 1; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// baseParams is the canonical workload from DESIGN.md §4.
func baseParams(seed int64) workload.Params {
	p := workload.Default()
	p.Seed = seed
	return p
}

// buildEngine subscribes xs into a fresh engine (instrumented with
// cfg.Metrics when set) and precompiles it.
func buildEngine(cfg Config, alg apcm.Algorithm, workers int, xs []*expr.Expression) (*apcm.Engine, error) {
	e, err := apcm.New(apcm.Options{Algorithm: alg, Workers: workers, Metrics: cfg.Metrics})
	if err != nil {
		return nil, err
	}
	for _, x := range xs {
		if err := e.Subscribe(x); err != nil {
			e.Close()
			return nil, err
		}
	}
	e.Prepare()
	return e, nil
}

// throughput measures sustained matching throughput (events/second) by
// replaying events in batches until at least minDur has elapsed.
func throughput(e *apcm.Engine, events []*expr.Event, minDur time.Duration) float64 {
	return batchThroughput(e, events, 64, minDur)
}

// batchThroughput is throughput with an explicit batch size, driving the
// zero-copy MatchBatchInto path with a reused result so the measurement
// reflects the kernel, not result-slice churn.
func batchThroughput(e *apcm.Engine, events []*expr.Event, batch int, minDur time.Duration) float64 {
	rate, _ := batchThroughputN(e, events, batch, minDur)
	return rate
}

// batchThroughputN additionally returns the number of events processed
// during the measured window, for ratio metrics (dedup per event).
func batchThroughputN(e *apcm.Engine, events []*expr.Event, batch int, minDur time.Duration) (float64, int) {
	var r apcm.BatchResult
	// Warm up: compile clusters, settle adaptive estimates.
	warm := len(events)
	if warm > 2*batch {
		warm = 2 * batch
	}
	e.MatchBatchInto(events[:warm], &r)

	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		for off := 0; off < len(events); off += batch {
			end := off + batch
			if end > len(events) {
				end = len(events)
			}
			e.MatchBatchInto(events[off:end], &r)
			n += end - off
			if n >= batch && time.Since(start) >= minDur {
				break
			}
		}
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0, n
	}
	return float64(n) / sec, n
}

// measureAlgorithms builds one engine per algorithm over xs and returns
// each algorithm's throughput on events.
func measureAlgorithms(cfg Config, algs []apcm.Algorithm, xs []*expr.Expression, events []*expr.Event) (map[apcm.Algorithm]float64, error) {
	out := make(map[apcm.Algorithm]float64, len(algs))
	for _, alg := range algs {
		e, err := buildEngine(cfg, alg, cfg.Workers, xs)
		if err != nil {
			return nil, fmt.Errorf("%v: %w", alg, err)
		}
		out[alg] = throughput(e, events, cfg.MinMeasure)
		e.Close()
	}
	return out, nil
}

func algHeaders(algs []apcm.Algorithm) []string {
	h := make([]string, len(algs))
	for i, a := range algs {
		h[i] = a.String() + " ev/s"
	}
	return h
}
