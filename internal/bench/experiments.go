package bench

import (
	"fmt"
	"net"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/broker"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
	"github.com/streammatch/apcm/internal/stats"
	"github.com/streammatch/apcm/workload"
)

func init() {
	register(e1())
	register(e2())
	register(e3())
	register(e4())
	register(e5())
	register(e6())
	register(e7())
	register(e8())
	register(e9())
	register(e10())
	register(e11())
	register(e12())
	register(e13())
	register(e14())
}

// gen produces a workload: n expressions plus nev events.
func gen(p workload.Params, n, nev int) ([]*expr.Expression, []*expr.Event) {
	g := workload.MustNew(p)
	xs := g.Expressions(n)
	return xs, g.Events(nev)
}

// ---------------------------------------------------------------- E1

func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Headline throughput at maximum subscription count, all algorithms",
		Expect: "A-PCM sustains orders of magnitude more events/s than the " +
			"sequential baselines (paper: 233,863 vs 36 ev/s at 5M subscriptions)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			n := cfg.n(20000, 200)
			xs, events := gen(baseParams(cfg.Seed), n, cfg.n(2000, 100))
			algs := apcm.Algorithms()
			rates, err := measureAlgorithms(cfg, algs, xs, events)
			if err != nil {
				return err
			}
			t := NewTable(fmt.Sprintf("E1: throughput at %d subscriptions", n),
				"algorithm", "events/s", "speedup vs Scan")
			base := rates[apcm.Scan]
			for _, a := range algs {
				speed := "1.0x"
				if base > 0 {
					speed = fmt.Sprintf("%.1fx", rates[a]/base)
				}
				t.AddRow(a.String(), FormatRate(rates[a]), speed)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E2

func e2() Experiment {
	return Experiment{
		ID:     "E2",
		Title:  "Throughput vs number of subscriptions",
		Expect: "every algorithm degrades as the database grows; the compressed matchers degrade slowest, so the gap widens with size",
		Run: func(cfg Config) error {
			cfg.sanitize()
			algs := apcm.Algorithms()
			t := NewTable("E2: throughput vs subscription count",
				append([]string{"subscriptions"}, algHeaders(algs)...)...)
			for _, base := range []int{1000, 2000, 5000, 10000, 20000} {
				n := cfg.n(base, 100)
				xs, events := gen(baseParams(cfg.Seed), n, cfg.n(1500, 100))
				rates, err := measureAlgorithms(cfg, algs, xs, events)
				if err != nil {
					return err
				}
				row := []string{fmt.Sprintf("%d", n)}
				for _, a := range algs {
					row = append(row, FormatRate(rates[a]))
				}
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E3

func e3() Experiment {
	return Experiment{
		ID:     "E3",
		Title:  "Throughput vs predicates per expression",
		Expect: "per-predicate algorithms (Scan, Counting) degrade linearly; compression amortises shared predicates so the compressed matchers flatten",
		Run: func(cfg Config) error {
			cfg.sanitize()
			algs := apcm.Algorithms()
			t := NewTable("E3: throughput vs predicates/expression",
				append([]string{"preds/expr"}, algHeaders(algs)...)...)
			for _, k := range []int{3, 5, 7, 9, 12} {
				p := baseParams(cfg.Seed)
				p.PredsMin, p.PredsMax = k, k
				if p.EventAttrs < k+3 {
					p.EventAttrs = k + 3
				}
				xs, events := gen(p, cfg.n(8000, 100), cfg.n(1500, 100))
				rates, err := measureAlgorithms(cfg, algs, xs, events)
				if err != nil {
					return err
				}
				row := []string{fmt.Sprintf("%d", k)}
				for _, a := range algs {
					row = append(row, FormatRate(rates[a]))
				}
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E4

func e4() Experiment {
	return Experiment{
		ID:     "E4",
		Title:  "Throughput vs space dimensionality",
		Expect: "low dimensionality concentrates predicates on few attributes (hard to partition); higher dimensionality improves pruning for the tree-based matchers",
		Run: func(cfg Config) error {
			cfg.sanitize()
			algs := apcm.Algorithms()
			t := NewTable("E4: throughput vs number of attributes",
				append([]string{"attributes"}, algHeaders(algs)...)...)
			for _, d := range []int{50, 100, 200, 400, 800} {
				p := baseParams(cfg.Seed)
				p.NumAttrs = d
				xs, events := gen(p, cfg.n(8000, 100), cfg.n(1500, 100))
				rates, err := measureAlgorithms(cfg, algs, xs, events)
				if err != nil {
					return err
				}
				row := []string{fmt.Sprintf("%d", d)}
				for _, a := range algs {
					row = append(row, FormatRate(rates[a]))
				}
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E5

func e5() Experiment {
	return Experiment{
		ID:     "E5",
		Title:  "Throughput vs match probability",
		Expect: "higher match rates cost every algorithm (more candidates survive); the compressed kernels keep their advantage across the range",
		Run: func(cfg Config) error {
			cfg.sanitize()
			algs := apcm.Algorithms()
			t := NewTable("E5: throughput vs planted match fraction",
				append([]string{"match frac"}, algHeaders(algs)...)...)
			for _, mf := range []float64{0, 0.01, 0.05, 0.10, 0.25} {
				p := baseParams(cfg.Seed)
				p.MatchFraction = mf
				xs, events := gen(p, cfg.n(8000, 100), cfg.n(1500, 100))
				rates, err := measureAlgorithms(cfg, algs, xs, events)
				if err != nil {
					return err
				}
				row := []string{fmt.Sprintf("%.2f", mf)}
				for _, a := range algs {
					row = append(row, FormatRate(rates[a]))
				}
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E6

func e6() Experiment {
	return Experiment{
		ID:     "E6",
		Title:  "Parallel scaling: throughput vs worker count (A-PCM, PCM)",
		Expect: "near-linear speedup with cores on multi-core hosts (flat on this container when it has a single vCPU; the code path is identical)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			xs, events := gen(baseParams(cfg.Seed), cfg.n(15000, 200), cfg.n(2000, 100))
			t := NewTable("E6: throughput vs workers",
				"workers", "PCM ev/s", "PCM speedup", "A-PCM ev/s", "A-PCM speedup")
			var basePCM, baseAPCM float64
			for _, w := range []int{1, 2, 4, 8} {
				c := cfg
				c.Workers = w
				rates, err := measureAlgorithms(c, []apcm.Algorithm{apcm.PCM, apcm.APCM}, xs, events)
				if err != nil {
					return err
				}
				if w == 1 {
					basePCM, baseAPCM = rates[apcm.PCM], rates[apcm.APCM]
				}
				t.AddRow(fmt.Sprintf("%d", w),
					FormatRate(rates[apcm.PCM]), fmt.Sprintf("%.2fx", safeDiv(rates[apcm.PCM], basePCM)),
					FormatRate(rates[apcm.APCM]), fmt.Sprintf("%.2fx", safeDiv(rates[apcm.APCM], baseAPCM)))
			}
			emit(cfg, t)
			return nil
		},
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ---------------------------------------------------------------- E7

func e7() Experiment {
	return Experiment{
		ID:     "E7",
		Title:  "Adaptivity: A-PCM vs always-compressed vs never-compressed across cluster redundancy",
		Expect: "PCM wins on redundant workloads, the uncompressed tree wins on heterogeneous selective ones; A-PCM tracks whichever is better",
		Run: func(cfg Config) error {
			cfg.sanitize()
			t := NewTable("E7: throughput vs predicate-pool redundancy",
				"pred pool", "BE-Tree-256 ev/s", "PCM ev/s", "A-PCM ev/s", "A-PCM vs best")
			type variant struct {
				label string
				pool  int
				card  int
			}
			variants := []variant{
				{"4 (max redundancy)", 4, 1000},
				{"16", 16, 1000},
				{"64", 64, 1000},
				{"none (heterogeneous)", 0, 100000},
			}
			for _, v := range variants {
				p := baseParams(cfg.Seed)
				p.PredPoolSize = v.pool
				p.Cardinality = v.card
				xs, events := gen(p, cfg.n(10000, 100), cfg.n(1500, 100))

				rates := map[string]float64{}
				for _, spec := range []struct {
					key  string
					opts apcm.Options
				}{
					{"tree", apcm.Options{Algorithm: apcm.BETree, Workers: cfg.Workers, ClusterSize: 256}},
					{"pcm", apcm.Options{Algorithm: apcm.PCM, Workers: cfg.Workers}},
					{"apcm", apcm.Options{Algorithm: apcm.APCM, Workers: cfg.Workers}},
				} {
					e, err := apcm.New(spec.opts)
					if err != nil {
						return err
					}
					for _, x := range xs {
						if err := e.Subscribe(x); err != nil {
							return err
						}
					}
					e.Prepare()
					rates[spec.key] = throughput(e, events, cfg.MinMeasure)
					e.Close()
				}
				best := rates["tree"]
				if rates["pcm"] > best {
					best = rates["pcm"]
				}
				t.AddRow(v.label,
					FormatRate(rates["tree"]), FormatRate(rates["pcm"]), FormatRate(rates["apcm"]),
					fmt.Sprintf("%.2fx", safeDiv(rates["apcm"], best)))
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E8

func e8() Experiment {
	return Experiment{
		ID:     "E8",
		Title:  "Online stream re-ordering: throughput vs window size",
		Expect: "throughput rises with the window (better cluster locality) and saturates; window 1 equals no re-ordering",
		Run: func(cfg Config) error {
			cfg.sanitize()
			p := baseParams(cfg.Seed)
			p.AttrZipf = 1.5 // skewed streams benefit most from re-ordering
			xs, events := gen(p, cfg.n(15000, 200), cfg.n(4000, 200))
			e, err := buildEngine(cfg, apcm.APCM, cfg.Workers, xs)
			if err != nil {
				return err
			}
			defer e.Close()
			t := NewTable("E8: throughput vs OSR window", "window", "A-PCM ev/s", "vs window 1")
			var base float64
			for _, w := range []int{1, 16, 64, 256, 1024} {
				ordered := reorderWindows(events, w)
				r := throughput(e, ordered, cfg.MinMeasure)
				if w == 1 {
					base = r
				}
				t.AddRow(fmt.Sprintf("%d", w), FormatRate(r), fmt.Sprintf("%.2fx", safeDiv(r, base)))
			}
			emit(cfg, t)
			return nil
		},
	}
}

// reorderWindows applies OSR with the given window to a copy of events.
func reorderWindows(events []*expr.Event, window int) []*expr.Event {
	out := make([]*expr.Event, len(events))
	copy(out, events)
	if window <= 1 {
		return out
	}
	for off := 0; off < len(out); off += window {
		end := off + window
		if end > len(out) {
			end = len(out)
		}
		osr.Reorder(out[off:end])
	}
	return out
}

// ---------------------------------------------------------------- E9

func e9() Experiment {
	return Experiment{
		ID:     "E9",
		Title:  "Memory footprint and compression ratio vs subscription count",
		Expect: "the compressed index stays within a small constant of the tree baseline while replacing several predicate evaluations per dictionary entry",
		Run: func(cfg Config) error {
			cfg.sanitize()
			algs := apcm.Algorithms()
			headers := []string{"subscriptions"}
			for _, a := range algs {
				headers = append(headers, a.String()+" mem")
			}
			headers = append(headers, "A-PCM compression")
			t := NewTable("E9: memory footprint", headers...)
			for _, base := range []int{2000, 10000, 20000} {
				n := cfg.n(base, 100)
				xs, events := gen(baseParams(cfg.Seed), n, 200)
				row := []string{fmt.Sprintf("%d", n)}
				var ratio float64
				for _, a := range algs {
					e, err := buildEngine(cfg, a, 1, xs)
					if err != nil {
						return err
					}
					// Touch clusters so lazily compiled state is counted.
					e.MatchBatch(events)
					st := e.Stats()
					row = append(row, FormatBytes(st.MemBytes))
					if a == apcm.APCM {
						ratio = st.CompressionRatio
					}
					e.Close()
				}
				row = append(row, fmt.Sprintf("%.1f preds/entry", ratio))
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E10

func e10() Experiment {
	return Experiment{
		ID:     "E10",
		Title:  "Inter-event batching: throughput vs batch size (A-PCM)",
		Expect: "larger batches amortise dispatch and locking; gains saturate once per-batch overhead is negligible",
		Run: func(cfg Config) error {
			cfg.sanitize()
			xs, events := gen(baseParams(cfg.Seed), cfg.n(15000, 200), cfg.n(2000, 100))
			e, err := buildEngine(cfg, apcm.APCM, cfg.Workers, xs)
			if err != nil {
				return err
			}
			defer e.Close()
			t := NewTable("E10: throughput vs batch size", "batch", "A-PCM ev/s", "vs batch 1")
			var base float64
			for _, b := range []int{1, 8, 64, 256, 1024} {
				r := throughputBatch(e, events, cfg.MinMeasure, b)
				if b == 1 {
					base = r
				}
				t.AddRow(fmt.Sprintf("%d", b), FormatRate(r), fmt.Sprintf("%.2fx", safeDiv(r, base)))
			}
			emit(cfg, t)
			return nil
		},
	}
}

// throughputBatch is throughput with an explicit MatchBatch chunk size.
func throughputBatch(e *apcm.Engine, events []*expr.Event, minDur time.Duration, batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	e.MatchBatch(events[:min(len(events), batch)])
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		for off := 0; off < len(events); off += batch {
			end := off + batch
			if end > len(events) {
				end = len(events)
			}
			e.MatchBatch(events[off:end])
			n += end - off
			if time.Since(start) >= minDur {
				break
			}
		}
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(n) / sec
}

// ---------------------------------------------------------------- E11

func e11() Experiment {
	return Experiment{
		ID:     "E11",
		Title:  "Per-event match latency percentiles, all algorithms",
		Expect: "the compressed matchers shift the whole latency distribution down, including the tail",
		Run: func(cfg Config) error {
			cfg.sanitize()
			xs, events := gen(baseParams(cfg.Seed), cfg.n(15000, 200), cfg.n(1000, 100))
			t := NewTable("E11: per-event match latency",
				"algorithm", "p50", "p95", "p99", "max")
			for _, a := range apcm.Algorithms() {
				e, err := buildEngine(cfg, a, cfg.Workers, xs)
				if err != nil {
					return err
				}
				h := stats.NewLatencyHistogram()
				deadline := time.Now().Add(cfg.MinMeasure)
				for i := 0; ; i++ {
					ev := events[i%len(events)]
					start := time.Now()
					e.Match(ev)
					h.AddDuration(time.Since(start))
					// Collect at least 30 samples even if one pass already
					// exceeds the deadline (slow baselines at large sizes).
					if time.Now().After(deadline) && i >= 30 {
						break
					}
				}
				t.AddRow(a.String(),
					time.Duration(h.Quantile(0.50)).String(),
					time.Duration(h.Quantile(0.95)).String(),
					time.Duration(h.Quantile(0.99)).String(),
					time.Duration(h.Max()).String())
				e.Close()
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E12

func e12() Experiment {
	return Experiment{
		ID:     "E12",
		Title:  "Update throughput: subscription insertions and deletions mid-stream",
		Expect: "lazy recompilation keeps compressed updates within a small factor of the tree baseline",
		Run: func(cfg Config) error {
			cfg.sanitize()
			n := cfg.n(10000, 200)
			churn := n / 5
			t := NewTable("E12: update throughput",
				"algorithm", "inserts/s", "deletes/s", "match ev/s during churn")
			for _, a := range apcm.Algorithms() {
				p := baseParams(cfg.Seed)
				g := workload.MustNew(p)
				xs := g.Expressions(n + churn)
				events := g.Events(500)
				e, err := buildEngine(cfg, a, cfg.Workers, xs[:n])
				if err != nil {
					return err
				}

				start := time.Now()
				for _, x := range xs[n:] {
					if err := e.Subscribe(x); err != nil {
						return err
					}
				}
				insRate := float64(churn) / time.Since(start).Seconds()

				// Matching interleaved with churn: alternate one event with
				// one delete+reinsert pair.
				me := stats.NewMeter()
				for i := 0; i < 200; i++ {
					e.Match(events[i%len(events)])
					me.Add(1)
					x := xs[n+i%churn]
					e.Unsubscribe(x.ID)
					if err := e.Subscribe(x); err != nil {
						return err
					}
				}
				matchRate := me.Rate()

				start = time.Now()
				for _, x := range xs[n:] {
					if !e.Unsubscribe(x.ID) {
						return fmt.Errorf("%v: unsubscribe failed", a)
					}
				}
				delRate := float64(churn) / time.Since(start).Seconds()
				t.AddRow(a.String(), FormatRate(insRate), FormatRate(delRate), FormatRate(matchRate))
				e.Close()
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E13

func e13() Experiment {
	return Experiment{
		ID:     "E13",
		Title:  "Operator mix: throughput vs equality-predicate share",
		Expect: "equality-heavy subscriptions cluster and compress best; range-heavy mixes narrow the compressed advantage",
		Run: func(cfg Config) error {
			cfg.sanitize()
			algs := []apcm.Algorithm{apcm.BETree, apcm.PCM, apcm.APCM}
			t := NewTable("E13: throughput vs % equality predicates",
				append([]string{"% equality"}, algHeaders(algs)...)...)
			for _, eq := range []float64{1.0, 0.85, 0.6, 0.3} {
				p := baseParams(cfg.Seed)
				rest := 1 - eq
				p.WEquality = eq
				p.WRange = rest * 0.7
				p.WMembership = rest * 0.3
				xs, events := gen(p, cfg.n(10000, 100), cfg.n(1500, 100))
				rates, err := measureAlgorithms(cfg, algs, xs, events)
				if err != nil {
					return err
				}
				row := []string{fmt.Sprintf("%.0f%%", eq*100)}
				for _, a := range algs {
					row = append(row, FormatRate(rates[a]))
				}
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E14

func e14() Experiment {
	return Experiment{
		ID:     "E14",
		Title:  "End-to-end broker rate over loopback TCP",
		Expect: "the system-level event rate (parse + match + deliver) stays within a small factor of the raw matcher rate",
		Run: func(cfg Config) error {
			cfg.sanitize()
			p := baseParams(cfg.Seed)
			g := workload.MustNew(p)
			n := cfg.n(10000, 200)
			xs := g.Expressions(n)
			events := g.Events(cfg.n(2000, 100))

			eng, err := apcm.New(apcm.Options{Workers: cfg.Workers})
			if err != nil {
				return err
			}
			defer eng.Close()
			// Seed the bulk of the subscription database directly; the
			// protocol path is exercised by the client's own subscriptions.
			// Direct ids live in a high range so they cannot collide with
			// the engine-allocated ids the broker assigns to client
			// subscriptions.
			for _, x := range xs[:n-50] {
				seed := &expr.Expression{ID: x.ID + 1<<40, Preds: x.Preds}
				if err := eng.Subscribe(seed); err != nil {
					return err
				}
			}
			eng.Prepare()

			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			srv := broker.NewServer(eng)
			srv.Logf = func(string, ...any) {}
			go srv.Serve(ln) //apcm:detached Serve returns on the deferred srv.Close()
			defer srv.Close()

			c, err := broker.Dial(ln.Addr().String())
			if err != nil {
				return err
			}
			defer c.Close()
			for i, x := range xs[n-50:] {
				sub := &expr.Expression{ID: expr.ID(i + 1), Preds: x.Preds}
				if err := c.Subscribe(sub, func(*expr.Event) {}); err != nil {
					return err
				}
			}
			// One broad subscription guarantees a steady delivery flow, so
			// the end-to-end path (match + frame + push) is exercised.
			broad := expr.MustNew(expr.ID(500), expr.Ge(0, 0))
			if err := c.Subscribe(broad, func(*expr.Event) {}); err != nil {
				return err
			}

			published := 0
			start := time.Now()
			for time.Since(start) < cfg.MinMeasure {
				for _, ev := range events {
					if err := c.Publish(ev); err != nil {
						return err
					}
					published++
				}
				// Barrier: an acknowledged request on the same connection
				// proves every prior publish was processed in order.
				if err := c.Unsubscribe(99999); err == nil {
					return fmt.Errorf("barrier unsubscribe unexpectedly succeeded")
				}
			}
			elapsed := time.Since(start).Seconds()

			srvPub, srvDel := srv.Stats()
			t := NewTable("E14: broker end-to-end over loopback",
				"metric", "value")
			t.AddRow("subscriptions", fmt.Sprintf("%d", eng.Len()))
			t.AddRow("events published", fmt.Sprintf("%d", published))
			t.AddRow("end-to-end events/s", FormatRate(float64(srvPub)/elapsed))
			t.AddRow("deliveries", fmt.Sprintf("%d", srvDel))
			emit(cfg, t)
			return nil
		},
	}
}
