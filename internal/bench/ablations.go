package bench

import (
	"fmt"

	"github.com/streammatch/apcm"
)

// Ablations beyond the paper's figures: sweeps over the two design
// parameters DESIGN.md calls out — the adaptive probe cadence and the
// cluster (pool) size that trades tree pruning against compression.

func init() {
	register(e15())
	register(e16())
}

// ---------------------------------------------------------------- E15

func e15() Experiment {
	return Experiment{
		ID:     "E15",
		Title:  "Ablation: adaptive probe interval",
		Expect: "probing too often pays double-kernel tax; probing too rarely adapts slowly — a broad plateau in between (ours: beyond-paper ablation)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			p := baseParams(cfg.Seed)
			xs, events := gen(p, cfg.n(15000, 200), cfg.n(2000, 100))
			t := NewTable("E15: A-PCM throughput vs probe interval",
				"probe interval", "A-PCM ev/s")
			for _, pi := range []int{2, 8, 32, 64, 256, 1024} {
				e, err := apcm.New(apcm.Options{Workers: cfg.Workers, ProbeInterval: pi})
				if err != nil {
					return err
				}
				for _, x := range xs {
					if err := e.Subscribe(x); err != nil {
						return err
					}
				}
				e.Prepare()
				r := throughput(e, events, cfg.MinMeasure)
				e.Close()
				t.AddRow(fmt.Sprintf("%d", pi), FormatRate(r))
			}
			emit(cfg, t)
			return nil
		},
	}
}

// ---------------------------------------------------------------- E16

func e16() Experiment {
	return Experiment{
		ID:     "E16",
		Title:  "Ablation: cluster size (BE-Tree pool bound)",
		Expect: "small clusters prune better, large clusters compress better; the compressed matchers peak at mid-size clusters (ours: beyond-paper ablation)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			p := baseParams(cfg.Seed)
			xs, events := gen(p, cfg.n(15000, 200), cfg.n(2000, 100))
			t := NewTable("E16: throughput vs cluster size",
				"cluster size", "BE-Tree ev/s", "PCM ev/s", "A-PCM ev/s")
			for _, size := range []int{32, 64, 128, 256, 512, 1024} {
				row := []string{fmt.Sprintf("%d", size)}
				for _, alg := range []apcm.Algorithm{apcm.BETree, apcm.PCM, apcm.APCM} {
					e, err := apcm.New(apcm.Options{Algorithm: alg, Workers: cfg.Workers, ClusterSize: size})
					if err != nil {
						return err
					}
					for _, x := range xs {
						if err := e.Subscribe(x); err != nil {
							return err
						}
					}
					e.Prepare()
					row = append(row, FormatRate(throughput(e, events, cfg.MinMeasure)))
					e.Close()
				}
				t.AddRow(row...)
			}
			emit(cfg, t)
			return nil
		},
	}
}
