package bench

import (
	"fmt"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/internal/osr"
)

// E17: the batch-vectorized match path. Sweeps batch size with
// cross-event memoization enabled and disabled over a value/attribute
// skewed workload (skew is what makes adjacent, locality-ordered events
// repeat predicate evaluations — the memo's food supply), and reports
// the memo, eligibility-cache and dedup hit ratios alongside throughput.

func init() {
	register(e17())
}

func e17() Experiment {
	return Experiment{
		ID:     "E17",
		Title:  "Ablation: batch size × cross-event memoization",
		Expect: "with memoization on, throughput climbs with batch size as memo/eligibility hit ratios rise; with it off the curve stays flat — batching alone only saves lock traffic (ours: beyond-paper ablation)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			p := baseParams(cfg.Seed)
			p.AttrZipf = 1.2
			p.ValueZipf = 1.5
			// Range-heavy mix: equality predicates resolve through the
			// clusters' equality-union hash and never reach the memo, so
			// the ablation is only informative when the distinct-predicate
			// loop it short-circuits carries real weight.
			p.WEquality = 0.30
			p.WRange = 0.60
			xs, events := gen(p, cfg.n(15000, 200), cfg.n(4096, 256))
			// Locality order, as the OSR window would deliver them.
			osr.Reorder(events)
			t := NewTable("E17: A-PCM batch throughput vs batch size and memoization",
				"batch", "memo ev/s", "no-memo ev/s", "memo hit%", "elig hit%", "dedup%")
			for _, batch := range []int{1, 16, 64, 256, 1024} {
				var rates [2]float64
				var memoPct, eligPct, dedupPct float64
				for i, memo := range []bool{true, false} {
					e, err := apcm.New(apcm.Options{
						Workers:          cfg.Workers,
						Metrics:          cfg.Metrics,
						DisableBatchMemo: !memo,
					})
					if err != nil {
						return err
					}
					for _, x := range xs {
						if err := e.Subscribe(x); err != nil {
							e.Close()
							return err
						}
					}
					e.Prepare()
					rate, n := batchThroughputN(e, events, batch, cfg.MinMeasure)
					rates[i] = rate
					if memo {
						st := e.Stats()
						if st.MemoLookups > 0 {
							memoPct = float64(st.MemoHits) / float64(st.MemoLookups) * 100
						}
						if st.EligLookups > 0 {
							eligPct = float64(st.EligHits) / float64(st.EligLookups) * 100
						}
						if n > 0 {
							dedupPct = float64(st.BatchDedups) / float64(n) * 100
						}
					}
					e.Close()
				}
				t.AddRow(fmt.Sprintf("%d", batch),
					FormatRate(rates[0]), FormatRate(rates[1]),
					fmt.Sprintf("%.1f", memoPct), fmt.Sprintf("%.1f", eligPct),
					fmt.Sprintf("%.2f", dedupPct))
			}
			emit(cfg, t)
			return nil
		},
	}
}
