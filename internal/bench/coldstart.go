package bench

import (
	"bytes"
	"fmt"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/shard"
	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

// E20: cold-start restore. At millions of subscriptions the restart
// path — LoadSubscriptions + compile — dominates failover downtime
// (DESIGN §11.3), so this experiment measures restore wall-clock and
// throughput for one snapshot replayed through the three restore
// paths: the plain one-Subscribe-per-record loop kept as the baseline
// (LoadSubscriptionsSequential), the optimized engine restore (slab
// decode + bulk insert, pipelined across decode workers when cores
// allow), and a 4-shard group restoring shards in parallel into
// quarter-size trees. BENCH_pr8.json holds a committed pass through
// the go-test twin (BenchmarkLoadSubscriptions).

func init() {
	register(e20())
}

func e20() Experiment {
	return Experiment{
		ID:     "E20",
		Title:  "Cold-start restore: sequential vs optimized vs sharded",
		Expect: "the optimized restore holds a constant gap over the sequential loop (fewer allocations, batch inserts); the group widens with scale as per-shard trees stay small (ours: beyond-paper cold-start floor)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			// At -scale 50 the size axis is 1M, 2.5M and 5M
			// subscriptions — the regimes where restart downtime is
			// measured in seconds.
			sizes := []int{
				cfg.n(20000, 600),
				cfg.n(50000, 800),
				cfg.n(100000, 1000),
			}
			p := baseParams(cfg.Seed)
			p.PlantPoolSize = 65536

			t := NewTable("E20: cold-start restore, snapshot → ready engine",
				"subs", "path", "wall s", "subs/s", "vs sequential")
			for _, nsubs := range sizes {
				g, err := workload.New(p)
				if err != nil {
					return err
				}
				var buf bytes.Buffer
				tw, err := trace.NewWriter(&buf, trace.KindExpressions, nsubs)
				if err != nil {
					return err
				}
				for i := 0; i < nsubs; i++ {
					if err := tw.WriteExpression(g.Expression()); err != nil {
						return err
					}
				}
				if err := tw.Close(); err != nil {
					return err
				}
				data := buf.Bytes()

				restore := func(load func([]byte) (int, error)) (time.Duration, error) {
					start := time.Now()
					n, err := load(data)
					d := time.Since(start)
					if err != nil {
						return 0, err
					}
					if n != nsubs {
						return 0, fmt.Errorf("restored %d of %d subscriptions", n, nsubs)
					}
					return d, nil
				}
				paths := []struct {
					name string
					load func([]byte) (int, error)
				}{
					{"sequential", func(data []byte) (int, error) {
						e, err := apcm.New(apcm.Options{Workers: cfg.Workers, Metrics: cfg.Metrics})
						if err != nil {
							return 0, err
						}
						defer e.Close()
						return e.LoadSubscriptionsSequential(bytes.NewReader(data))
					}},
					{"engine", func(data []byte) (int, error) {
						e, err := apcm.New(apcm.Options{Workers: cfg.Workers, Metrics: cfg.Metrics})
						if err != nil {
							return 0, err
						}
						defer e.Close()
						return e.LoadSubscriptions(bytes.NewReader(data))
					}},
					{"group=4", func(data []byte) (int, error) {
						grp, err := shard.New(shard.Options{Shards: 4, Workers: cfg.Workers, Metrics: cfg.Metrics})
						if err != nil {
							return 0, err
						}
						defer grp.Close()
						return grp.LoadSubscriptions(bytes.NewReader(data))
					}},
				}
				var base float64
				for _, path := range paths {
					d, err := restore(path.load)
					if err != nil {
						return fmt.Errorf("E20 %d subs via %s: %w", nsubs, path.name, err)
					}
					rate := float64(nsubs) / d.Seconds()
					if path.name == "sequential" {
						base = rate
					}
					speedup := "-"
					if base > 0 {
						speedup = fmt.Sprintf("%.2fx", rate/base)
					}
					t.AddRow(fmt.Sprintf("%d", nsubs), path.name,
						fmt.Sprintf("%.2f", d.Seconds()), FormatRate(rate), speedup)
				}
			}
			emit(cfg, t)
			return nil
		},
	}
}
