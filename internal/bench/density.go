package bench

import (
	"fmt"

	"github.com/streammatch/apcm"
)

// E18: density-adaptive layout ablation. The canonical workload compiles
// overwhelmingly sparse postings (most dictionary entries hold a handful
// of members out of a 384-slot cluster), which is exactly the regime the
// hybrid layout, the flat equality tables and the kill-ordered group
// loop target. Each lever is switched off in turn, then all together
// (the pre-PR dense layout), and the same sweep is repeated on a
// redundant pool (E7's max-redundancy regime) where postings are dense —
// the no-regression check that dense workloads lose nothing.

func init() {
	register(e18())
}

func e18() Experiment {
	return Experiment{
		ID:     "E18",
		Title:  "Ablation: posting density × group ordering",
		Expect: "on the sparse canonical workload each lever contributes and all-off is slowest; on the dense redundant regime the variants tie within noise (ours: beyond-paper ablation)",
		Run: func(cfg Config) error {
			cfg.sanitize()
			type variant struct {
				label string
				opts  apcm.Options
			}
			variants := []variant{
				{"full", apcm.Options{}},
				{"no-hybrid", apcm.Options{DisableHybridPostings: true}},
				{"no-flateq", apcm.Options{DisableFlatEq: true}},
				{"no-ordering", apcm.Options{DisableGroupOrdering: true}},
				{"all-off", apcm.Options{
					DisableHybridPostings: true,
					DisableFlatEq:         true,
					DisableGroupOrdering:  true,
				}},
			}
			type regime struct {
				label string
				pool  int
			}
			regimes := []regime{
				{"canonical (sparse)", 0},
				{"redundant pool=4 (dense)", 4},
			}
			t := NewTable("E18: A-PCM throughput vs layout levers and posting density",
				"regime", "variant", "A-PCM ev/s", "vs all-off", "sparse/dense postings", "flat-eq tables")
			for _, rg := range regimes {
				p := baseParams(cfg.Seed)
				p.PredPoolSize = rg.pool
				xs, events := gen(p, cfg.n(15000, 200), cfg.n(2000, 100))
				rates := make([]float64, len(variants))
				layouts := make([]string, len(variants))
				tables := make([]int, len(variants))
				for i, v := range variants {
					opts := v.opts
					opts.Workers = cfg.Workers
					opts.Metrics = cfg.Metrics
					e, err := apcm.New(opts)
					if err != nil {
						return err
					}
					for _, x := range xs {
						if err := e.Subscribe(x); err != nil {
							e.Close()
							return err
						}
					}
					e.Prepare()
					rates[i] = batchThroughput(e, events, 64, cfg.MinMeasure)
					st := e.Stats()
					layouts[i] = fmt.Sprintf("%d/%d", st.SparsePostings, st.DensePostings)
					tables[i] = st.EqFlatTables
					e.Close()
				}
				base := rates[len(rates)-1] // all-off
				for i, v := range variants {
					t.AddRow(rg.label, v.label, FormatRate(rates[i]),
						fmt.Sprintf("%.2fx", safeDiv(rates[i], base)),
						layouts[i], fmt.Sprintf("%d", tables[i]))
				}
			}
			emit(cfg, t)
			return nil
		},
	}
}
