package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders an aligned text table, one row per
// x-value and one column per algorithm — the same layout as a paper
// figure's data.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if t.title != "" {
		fmt.Fprintln(w, t.title)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// FprintCSV renders the table as RFC-4180-ish CSV (the title becomes a
// comment line), for piping into plotting scripts.
func (t *Table) FprintCSV(w io.Writer) {
	if t.title != "" {
		fmt.Fprintf(w, "# %s\n", t.title)
	}
	writeCSVRow(w, t.headers)
	for _, row := range t.rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		io.WriteString(w, c)
	}
	io.WriteString(w, "\n")
}

// FormatRate renders events/second compactly (1234, 12.3k, 1.23M).
func FormatRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// FormatBytes renders a byte count compactly.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
