package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig runs experiments at minimum size: the tests verify the
// harness machinery (workload plumbing, engine lifecycle, table output),
// not performance numbers.
func tinyConfig(out *bytes.Buffer) Config {
	return Config{
		Out:        out,
		Scale:      0.02,
		Workers:    2,
		Seed:       1,
		MinMeasure: 5 * time.Millisecond,
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(all))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Expect == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for i := 1; i <= 19; i++ {
		id := "E" + itoa(i)
		if _, ok := Get(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("Get invented an experiment")
	}
}

func itoa(i int) string {
	if i >= 10 {
		return string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return string(rune('0' + i))
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var out bytes.Buffer
			if err := e.Run(tinyConfig(&out)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			s := out.String()
			if !strings.Contains(s, e.ID+":") {
				t.Fatalf("%s output missing its id header:\n%s", e.ID, s)
			}
			if len(strings.Split(strings.TrimSpace(s), "\n")) < 3 {
				t.Fatalf("%s output implausibly short:\n%s", e.ID, s)
			}
		})
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("T: demo", "a", "b")
	tab.AddRow("1", `x,"y`)
	tab.FprintCSV(&buf)
	want := "# T: demo\na,b\n1,\"x,\"\"y\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestCSVConfigRouting(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.CSV = true
	e, _ := Get("E9")
	if err := e.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ",") || !strings.HasPrefix(buf.String(), "#") {
		t.Fatalf("CSV output not produced:\n%s", buf.String())
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("T: demo", "col a", "b")
	tab.AddRow("1", "2")
	tab.AddRow("333333")       // short row padded
	tab.AddRow("4", "5", "66") // long row truncated
	tab.Fprint(&buf)
	s := buf.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if lines[0] != "T: demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col a") {
		t.Fatalf("header line = %q", lines[1])
	}
	if strings.Contains(s, "66") {
		t.Fatal("overflow cell should be dropped")
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		3:       "3.00",
		233:     "233",
		23386:   "23.4k",
		2338630: "2.34M",
	}
	for in, want := range cases {
		if got := FormatRate(in); got != want {
			t.Errorf("FormatRate(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KiB",
		3 << 20: "3.00MiB",
		5 << 30: "5.00GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestConfigSanitize(t *testing.T) {
	var c Config
	c.sanitize()
	if c.Scale != 1 || c.Seed == 0 || c.MinMeasure <= 0 || c.Out == nil {
		t.Fatalf("sanitize incomplete: %+v", c)
	}
	if c.n(1000, 10) != 1000 {
		t.Fatalf("n(1000) = %d", c.n(1000, 10))
	}
	c.Scale = 0.001
	if c.n(1000, 10) != 10 {
		t.Fatalf("floor not applied: %d", c.n(1000, 10))
	}
}

func TestReorderWindows(t *testing.T) {
	cfgOut := &bytes.Buffer{}
	_ = cfgOut
	// Covered indirectly by E8; check the copy semantics here.
	xs, events := gen(baseParams(1), 10, 50)
	_ = xs
	orig := make([]string, len(events))
	for i, e := range events {
		orig[i] = e.String()
	}
	out := reorderWindows(events, 16)
	if len(out) != len(events) {
		t.Fatal("length changed")
	}
	for i, e := range events {
		if e.String() != orig[i] {
			t.Fatal("input slice mutated")
		}
	}
	_ = out
}
