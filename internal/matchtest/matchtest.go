// Package matchtest provides a conformance harness shared by every
// matcher implementation: semantic equivalence against the reference
// MatchesEvent oracle on randomized workloads, duplicate/delete
// behaviour, and insert/delete/match churn. New matchers get the full
// battery by calling RunConformance from their tests.
package matchtest

import (
	"fmt"
	"sort"
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/workload"
)

// Factory builds an empty matcher under test.
type Factory func() match.Matcher

// RunConformance runs the complete battery against mk.
func RunConformance(t *testing.T, mk Factory) {
	t.Helper()
	t.Run("Empty", func(t *testing.T) { testEmpty(t, mk) })
	t.Run("DuplicateInsert", func(t *testing.T) { testDuplicateInsert(t, mk) })
	t.Run("DeleteSemantics", func(t *testing.T) { testDeleteSemantics(t, mk) })
	t.Run("SingleExpression", func(t *testing.T) { testSingleExpression(t, mk) })
	t.Run("OracleEquivalence", func(t *testing.T) { testOracleEquivalence(t, mk) })
	t.Run("Churn", func(t *testing.T) { testChurn(t, mk) })
	t.Run("NoDuplicateMatches", func(t *testing.T) { testNoDuplicateMatches(t, mk) })
	t.Run("ForEach", func(t *testing.T) { testForEach(t, mk) })
}

func testForEach(t *testing.T, mk Factory) {
	m := mk()
	want := map[expr.ID]bool{}
	for id := expr.ID(1); id <= 50; id++ {
		mustInsert(t, m, expr.MustNew(id, expr.Eq(1, expr.Value(id%7))))
		want[id] = true
	}
	for id := expr.ID(1); id <= 50; id += 3 {
		if !m.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
		delete(want, id)
	}
	got := map[expr.ID]bool{}
	m.ForEach(func(x *expr.Expression) bool {
		if got[x.ID] {
			t.Fatalf("ForEach visited id %d twice", x.ID)
		}
		got[x.ID] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d expressions, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("ForEach missed id %d", id)
		}
	}
	// Early stop.
	n := 0
	m.ForEach(func(*expr.Expression) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("ForEach ignored early stop: visited %d", n)
	}
}

func testEmpty(t *testing.T, mk Factory) {
	m := mk()
	if m.Size() != 0 {
		t.Fatalf("fresh matcher Size = %d", m.Size())
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.Pair{Attr: 1, Val: 1}))
	if len(got) != 0 {
		t.Fatalf("fresh matcher matched %v", got)
	}
	if m.Delete(42) {
		t.Fatal("delete on empty matcher reported success")
	}
}

func testDuplicateInsert(t *testing.T, mk Factory) {
	m := mk()
	x := expr.MustNew(7, expr.Eq(1, 5))
	if err := m.Insert(x); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(x); err == nil {
		t.Fatal("duplicate insert should fail")
	}
	if m.Size() != 1 {
		t.Fatalf("Size after duplicate insert = %d", m.Size())
	}
}

func testDeleteSemantics(t *testing.T, mk Factory) {
	m := mk()
	x := expr.MustNew(7, expr.Eq(1, 5))
	mustInsert(t, m, x)
	ev := expr.MustEvent(expr.Pair{Attr: 1, Val: 5})
	if got := m.MatchAppend(nil, ev); len(got) != 1 || got[0] != 7 {
		t.Fatalf("expected match before delete, got %v", got)
	}
	if !m.Delete(7) {
		t.Fatal("delete of present id failed")
	}
	if m.Delete(7) {
		t.Fatal("double delete reported success")
	}
	if got := m.MatchAppend(nil, ev); len(got) != 0 {
		t.Fatalf("matched deleted expression: %v", got)
	}
	if m.Size() != 0 {
		t.Fatalf("Size after delete = %d", m.Size())
	}
	// Re-inserting the same id after deletion must work.
	mustInsert(t, m, x)
	if got := m.MatchAppend(nil, ev); len(got) != 1 {
		t.Fatalf("re-inserted expression not matched: %v", got)
	}
}

func testSingleExpression(t *testing.T, mk Factory) {
	cases := []struct {
		x     *expr.Expression
		ev    *expr.Event
		match bool
	}{
		{expr.MustNew(1, expr.Eq(1, 5)), expr.MustEvent(expr.P(1, 5)), true},
		{expr.MustNew(1, expr.Eq(1, 5)), expr.MustEvent(expr.P(1, 6)), false},
		{expr.MustNew(1, expr.Eq(1, 5)), expr.MustEvent(expr.P(2, 5)), false},
		{expr.MustNew(1, expr.Rng(1, 3, 9)), expr.MustEvent(expr.P(1, 9)), true},
		{expr.MustNew(1, expr.Rng(1, 3, 9)), expr.MustEvent(expr.P(1, 10)), false},
		{expr.MustNew(1, expr.Any(1, 2, 4)), expr.MustEvent(expr.P(1, 4)), true},
		{expr.MustNew(1, expr.Any(1, 2, 4)), expr.MustEvent(expr.P(1, 3)), false},
		{expr.MustNew(1, expr.Ne(1, 5)), expr.MustEvent(expr.P(1, 4)), true},
		{expr.MustNew(1, expr.Ne(1, 5)), expr.MustEvent(expr.P(1, 5)), false},
		{expr.MustNew(1, expr.Ne(1, 5)), expr.MustEvent(expr.P(2, 4)), false}, // attr missing
		{expr.MustNew(1, expr.None(1, 5, 6)), expr.MustEvent(expr.P(1, 7)), true},
		{expr.MustNew(1, expr.Lt(1, 5), expr.Gt(2, 5)), expr.MustEvent(expr.P(1, 4), expr.P(2, 6)), true},
		{expr.MustNew(1, expr.Lt(1, 5), expr.Gt(2, 5)), expr.MustEvent(expr.P(1, 4), expr.P(2, 5)), false},
		// Two predicates on one attribute.
		{expr.MustNew(1, expr.Gt(1, 3), expr.Lt(1, 7)), expr.MustEvent(expr.P(1, 5)), true},
		{expr.MustNew(1, expr.Gt(1, 3), expr.Lt(1, 7)), expr.MustEvent(expr.P(1, 3)), false},
		// Only non-indexable predicates.
		{expr.MustNew(1, expr.Ne(1, 0), expr.None(2, 9)), expr.MustEvent(expr.P(1, 1), expr.P(2, 2)), true},
		{expr.MustNew(1, expr.Ne(1, 0)), expr.MustEvent(expr.P(2, 1)), false},
	}
	for i, c := range cases {
		m := mk()
		mustInsert(t, m, c.x)
		got := m.MatchAppend(nil, c.ev)
		if (len(got) == 1) != c.match {
			t.Errorf("case %d: %s vs %s: got %v, want match=%v", i, c.x, c.ev, got, c.match)
		}
	}
}

// Workloads exercised by the oracle equivalence test. Mixes cover
// equality-heavy, range-heavy, negation-bearing, pooled/redundant and
// skewed regimes, all small enough for the brute-force oracle.
func conformanceWorkloads() []workload.Params {
	base := workload.Default()
	base.NumAttrs = 12
	base.Cardinality = 30
	base.EventAttrs = 6
	base.PredsMin, base.PredsMax = 1, 4
	base.MatchFraction = 0.3
	base.PredPoolSize = 0

	w1 := base // equality-heavy

	w2 := base
	w2.Seed = 2
	w2.WEquality, w2.WRange, w2.WMembership, w2.WNegated = 0.2, 0.5, 0.2, 0.1
	w2.RangeWidthFrac = 0.3

	w3 := base
	w3.Seed = 3
	w3.WEquality, w3.WRange, w3.WMembership, w3.WNegated = 0.1, 0.1, 0.1, 0.7

	w4 := base
	w4.Seed = 4
	w4.PredPoolSize = 3 // heavy redundancy: the compressed sweet spot

	w5 := base
	w5.Seed = 5
	w5.ValueZipf = 1.5
	w5.AttrZipf = 1.5
	w5.WNegated = 0.1

	w6 := base
	w6.Seed = 6
	w6.NumAttrs = 3
	w6.EventAttrs = 3
	w6.Cardinality = 5 // tiny domain: maximum collision pressure
	w6.PredsMin, w6.PredsMax = 1, 3

	return []workload.Params{w1, w2, w3, w4, w5, w6}
}

func testOracleEquivalence(t *testing.T, mk Factory) {
	for wi, p := range conformanceWorkloads() {
		p := p
		t.Run(fmt.Sprintf("workload%d", wi+1), func(t *testing.T) {
			g := workload.MustNew(p)
			xs := g.Expressions(400)
			m := mk()
			for _, x := range xs {
				mustInsert(t, m, x)
			}
			if m.Size() != len(xs) {
				t.Fatalf("Size = %d, want %d", m.Size(), len(xs))
			}
			for _, ev := range g.Events(300) {
				want := oracle(xs, ev)
				got := normalize(m.MatchAppend(nil, ev))
				if !equalIDs(got, want) {
					t.Fatalf("event %s:\n got %v\nwant %v", ev, got, want)
				}
			}
		})
	}
}

func testChurn(t *testing.T, mk Factory) {
	p := conformanceWorkloads()[0]
	p.Seed = 99
	g := workload.MustNew(p)
	xs := g.Expressions(300)
	m := mk()
	live := map[expr.ID]*expr.Expression{}

	step := func(i int) {
		x := xs[i%len(xs)]
		if _, ok := live[x.ID]; ok {
			if !m.Delete(x.ID) {
				t.Fatalf("step %d: delete of live id %d failed", i, x.ID)
			}
			delete(live, x.ID)
		} else {
			mustInsert(t, m, x)
			live[x.ID] = x
		}
	}

	for i := 0; i < 900; i++ {
		step(i*7 + i*i%13)
		if i%25 == 0 {
			ev := g.Event()
			want := oracleMap(live, ev)
			got := normalize(m.MatchAppend(nil, ev))
			if !equalIDs(got, want) {
				t.Fatalf("step %d: got %v want %v", i, got, want)
			}
			if m.Size() != len(live) {
				t.Fatalf("step %d: Size = %d, want %d", i, m.Size(), len(live))
			}
		}
	}
}

func testNoDuplicateMatches(t *testing.T, mk Factory) {
	m := mk()
	// An expression whose predicates could be hit through multiple index
	// paths must still be reported once.
	x := expr.MustNew(5, expr.Any(1, 2, 3), expr.Rng(1, 0, 10), expr.Ge(2, 0))
	mustInsert(t, m, x)
	ev := expr.MustEvent(expr.P(1, 3), expr.P(2, 1))
	got := m.MatchAppend(nil, ev)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("got %v, want exactly [5]", got)
	}
}

func mustInsert(t *testing.T, m match.Matcher, x *expr.Expression) {
	t.Helper()
	if err := m.Insert(x); err != nil {
		t.Fatalf("Insert(%s): %v", x, err)
	}
}

func oracle(xs []*expr.Expression, ev *expr.Event) []expr.ID {
	var out []expr.ID
	for _, x := range xs {
		if x.MatchesEvent(ev) {
			out = append(out, x.ID)
		}
	}
	return normalize(out)
}

func oracleMap(live map[expr.ID]*expr.Expression, ev *expr.Event) []expr.ID {
	var out []expr.ID
	for _, x := range live {
		if x.MatchesEvent(ev) {
			out = append(out, x.ID)
		}
	}
	return normalize(out)
}

func normalize(ids []expr.ID) []expr.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []expr.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
