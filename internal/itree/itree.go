// Package itree provides a dynamic interval index: a treap keyed by
// interval low endpoint, augmented with subtree max-high, supporting
// O(log n) expected insertion/deletion and output-sensitive stabbing
// queries ("all intervals containing v"). The counting matcher uses one
// tree per attribute to find satisfied range predicates.
package itree

import "github.com/streammatch/apcm/expr"

// Item is an interval [Lo, Hi] carrying an opaque payload.
type Item struct {
	Lo, Hi  expr.Value
	Payload uint64
}

type node struct {
	item        Item
	prio        uint64 // treap heap priority
	maxHi       expr.Value
	left, right *node
}

// Tree is a treap-based interval index. The zero value is an empty tree.
// Tree is not safe for concurrent mutation.
type Tree struct {
	root *node
	size int
	// rngState drives deterministic treap priorities (xorshift64*), so
	// tree shape is reproducible for a given insertion sequence.
	rngState uint64
}

// New returns an empty tree.
func New() *Tree { return &Tree{rngState: 0x9E3779B97F4A7C15} }

func (t *Tree) nextPrio() uint64 {
	x := t.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// Len returns the number of stored intervals.
func (t *Tree) Len() int { return t.size }

func (n *node) recompute() {
	n.maxHi = n.item.Hi
	if n.left != nil && n.left.maxHi > n.maxHi {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > n.maxHi {
		n.maxHi = n.right.maxHi
	}
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	n.recompute()
	l.recompute()
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	n.recompute()
	r.recompute()
	return r
}

// Insert adds the interval. Duplicate intervals (same bounds and payload)
// are stored independently.
func (t *Tree) Insert(it Item) {
	t.root = t.insert(t.root, it, t.nextPrio())
	t.size++
}

func (t *Tree) insert(n *node, it Item, prio uint64) *node {
	if n == nil {
		nn := &node{item: it, prio: prio}
		nn.recompute()
		return nn
	}
	if less(it, n.item) {
		n.left = t.insert(n.left, it, prio)
		if n.left.prio > n.prio {
			return rotateRight(n)
		}
	} else {
		n.right = t.insert(n.right, it, prio)
		if n.right.prio > n.prio {
			return rotateLeft(n)
		}
	}
	n.recompute()
	return n
}

// less orders items by (Lo, Hi, Payload) so deletion can find an exact
// occurrence.
func less(a, b Item) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	if a.Hi != b.Hi {
		return a.Hi < b.Hi
	}
	return a.Payload < b.Payload
}

// Delete removes one occurrence of the exact item, reporting whether it
// was found.
func (t *Tree) Delete(it Item) bool {
	var found bool
	t.root, found = t.delete(t.root, it)
	if found {
		t.size--
	}
	return found
}

func (t *Tree) delete(n *node, it Item) (*node, bool) {
	if n == nil {
		return nil, false
	}
	var found bool
	switch {
	case it == n.item:
		// Rotate the node down until it is a leaf, then drop it.
		switch {
		case n.left == nil && n.right == nil:
			return nil, true
		case n.left == nil:
			n = rotateLeft(n)
			n.left, found = t.delete(n.left, it)
		case n.right == nil || n.left.prio > n.right.prio:
			n = rotateRight(n)
			n.right, found = t.delete(n.right, it)
		default:
			n = rotateLeft(n)
			n.left, found = t.delete(n.left, it)
		}
	case less(it, n.item):
		n.left, found = t.delete(n.left, it)
	default:
		n.right, found = t.delete(n.right, it)
	}
	n.recompute()
	return n, found
}

// Stab calls fn for every stored interval containing v. fn returning
// false stops the traversal.
func (t *Tree) Stab(v expr.Value, fn func(Item) bool) {
	stab(t.root, v, fn)
}

func stab(n *node, v expr.Value, fn func(Item) bool) bool {
	if n == nil || n.maxHi < v {
		return true
	}
	if !stab(n.left, v, fn) {
		return false
	}
	if n.item.Lo <= v {
		if v <= n.item.Hi && !fn(n.item) {
			return false
		}
		return stab(n.right, v, fn)
	}
	// All right-subtree intervals start at or after n.item.Lo > v, so none
	// can contain v.
	return true
}

// All calls fn for every stored interval in key order (debug/tests).
func (t *Tree) All(fn func(Item) bool) {
	all(t.root, fn)
}

func all(n *node, fn func(Item) bool) bool {
	if n == nil {
		return true
	}
	return all(n.left, fn) && fn(n.item) && all(n.right, fn)
}

// MemBytes estimates the heap footprint of the tree's nodes.
func (t *Tree) MemBytes() int64 { return int64(t.size) * 56 }
