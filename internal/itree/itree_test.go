package itree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/streammatch/apcm/expr"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	called := false
	tr.Stab(5, func(Item) bool { called = true; return true })
	if called {
		t.Fatal("stab on empty tree visited an interval")
	}
	if tr.Delete(Item{1, 2, 3}) {
		t.Fatal("delete on empty tree reported success")
	}
}

func TestStabBasics(t *testing.T) {
	tr := New()
	items := []Item{
		{0, 10, 1},
		{5, 5, 2},
		{-3, 2, 3},
		{8, 20, 4},
		{15, 15, 5},
	}
	for _, it := range items {
		tr.Insert(it)
	}
	cases := []struct {
		v    expr.Value
		want []uint64
	}{
		{5, []uint64{1, 2}},
		{0, []uint64{1, 3}},
		{-3, []uint64{3}},
		{9, []uint64{1, 4}},
		{15, []uint64{4, 5}},
		{100, nil},
		{-100, nil},
	}
	for _, c := range cases {
		got := collect(tr, c.v)
		if !equalSets(got, c.want) {
			t.Errorf("Stab(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func collect(tr *Tree, v expr.Value) []uint64 {
	var out []uint64
	tr.Stab(v, func(it Item) bool { out = append(out, it.Payload); return true })
	return out
}

func equalSets(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStabEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		tr.Insert(Item{0, 100, uint64(i)})
	}
	n := 0
	tr.Stab(50, func(Item) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("visited %d intervals after stop at 3", n)
	}
}

func TestDeleteExact(t *testing.T) {
	tr := New()
	tr.Insert(Item{1, 10, 7})
	tr.Insert(Item{1, 10, 8}) // same bounds, different payload
	if !tr.Delete(Item{1, 10, 7}) {
		t.Fatal("delete of present item failed")
	}
	if tr.Delete(Item{1, 10, 7}) {
		t.Fatal("double delete reported success")
	}
	got := collect(tr, 5)
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("after delete, Stab = %v", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDuplicateItemsCoexist(t *testing.T) {
	tr := New()
	tr.Insert(Item{2, 4, 9})
	tr.Insert(Item{2, 4, 9})
	if got := collect(tr, 3); len(got) != 2 {
		t.Fatalf("expected 2 duplicates, got %v", got)
	}
	tr.Delete(Item{2, 4, 9})
	if got := collect(tr, 3); len(got) != 1 {
		t.Fatalf("expected 1 remaining duplicate, got %v", got)
	}
}

// brute is the oracle: a plain slice.
type brute []Item

func (b brute) stab(v expr.Value) []uint64 {
	var out []uint64
	for _, it := range b {
		if it.Lo <= v && v <= it.Hi {
			out = append(out, it.Payload)
		}
	}
	return out
}

func TestPropStabMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var b brute
		for i := 0; i < 200; i++ {
			lo := expr.Value(rng.Intn(100) - 50)
			hi := lo + expr.Value(rng.Intn(30))
			it := Item{lo, hi, uint64(i)}
			tr.Insert(it)
			b = append(b, it)
		}
		for v := expr.Value(-60); v <= 60; v += 7 {
			if !equalSets(collect(tr, v), b.stab(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropInsertDeleteChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		live := map[Item]int{}
		var items []Item
		for step := 0; step < 500; step++ {
			if rng.Intn(3) > 0 || len(items) == 0 {
				it := Item{
					Lo:      expr.Value(rng.Intn(50)),
					Hi:      expr.Value(rng.Intn(50) + 50),
					Payload: uint64(rng.Intn(20)),
				}
				tr.Insert(it)
				live[it]++
				items = append(items, it)
			} else {
				it := items[rng.Intn(len(items))]
				want := live[it] > 0
				got := tr.Delete(it)
				if got != want {
					return false
				}
				if want {
					live[it]--
				}
			}
		}
		total := 0
		for _, c := range live {
			total += c
		}
		if tr.Len() != total {
			return false
		}
		// Final stab checks against the live multiset.
		var b brute
		for it, c := range live {
			for i := 0; i < c; i++ {
				b = append(b, it)
			}
		}
		for v := expr.Value(0); v < 100; v += 11 {
			if !equalSets(collect(tr, v), b.stab(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllVisitsInKeyOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		lo := expr.Value(rng.Intn(1000))
		tr.Insert(Item{lo, lo + expr.Value(rng.Intn(10)), uint64(i)})
	}
	var prev *Item
	ok := true
	tr.All(func(it Item) bool {
		if prev != nil && less(it, *prev) {
			ok = false
			return false
		}
		v := it
		prev = &v
		return true
	})
	if !ok {
		t.Fatal("All traversal out of key order")
	}
}

func TestTreapShapeDeterministic(t *testing.T) {
	build := func() []uint64 {
		tr := New()
		for i := 0; i < 100; i++ {
			tr.Insert(Item{expr.Value(i % 10), expr.Value(i%10 + 5), uint64(i)})
		}
		return collect(tr, 7)
	}
	a, b := build(), a2(build)
	if !equalSets(a, b) {
		t.Fatal("identical builds returned different stab results")
	}
}

func a2(f func() []uint64) []uint64 { return f() }

func BenchmarkStab(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		lo := expr.Value(rng.Intn(1 << 20))
		tr.Insert(Item{lo, lo + expr.Value(rng.Intn(1024)), uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Stab(expr.Value(i%(1<<20)), func(Item) bool { return true })
	}
}
