package osr

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/streammatch/apcm/expr"
)

func ev(pairs ...expr.Pair) *expr.Event { return expr.MustEvent(pairs...) }

func TestLess(t *testing.T) {
	cases := []struct {
		a, b *expr.Event
		want bool
	}{
		{ev(expr.P(1, 5)), ev(expr.P(2, 5)), true},
		{ev(expr.P(2, 5)), ev(expr.P(1, 5)), false},
		{ev(expr.P(1, 4)), ev(expr.P(1, 5)), true},
		{ev(expr.P(1, 5)), ev(expr.P(1, 5)), false},              // equal
		{ev(expr.P(1, 5)), ev(expr.P(1, 5), expr.P(2, 1)), true}, // prefix
		{ev(expr.P(1, 5), expr.P(2, 1)), ev(expr.P(1, 5)), false},
	}
	for i, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("case %d: Less(%s, %s) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var evs []*expr.Event
	for i := 0; i < 100; i++ {
		var pairs []expr.Pair
		for a := 0; a < 4; a++ {
			if rng.Intn(2) == 0 {
				pairs = append(pairs, expr.P(expr.AttrID(a), expr.Value(rng.Intn(3))))
			}
		}
		if len(pairs) == 0 {
			pairs = append(pairs, expr.P(0, 0))
		}
		evs = append(evs, ev(pairs...))
	}
	for _, a := range evs {
		if Less(a, a) {
			t.Fatal("Less not irreflexive")
		}
	}
	for _, a := range evs {
		for _, b := range evs {
			if Less(a, b) && Less(b, a) {
				t.Fatal("Less not asymmetric")
			}
		}
	}
}

func TestReorderGroupsSimilarEvents(t *testing.T) {
	var events []*expr.Event
	// Interleave two families of events.
	for i := 0; i < 10; i++ {
		events = append(events, ev(expr.P(1, expr.Value(i))))
		events = append(events, ev(expr.P(50, expr.Value(i))))
	}
	Reorder(events)
	if !sort.SliceIsSorted(events, func(i, j int) bool { return Less(events[i], events[j]) }) {
		t.Fatal("Reorder output not in locality order")
	}
	// All attr-1 events must precede all attr-50 events.
	for i := 0; i < 10; i++ {
		if events[i].Pairs()[0].Attr != 1 {
			t.Fatalf("position %d: %s", i, events[i])
		}
	}
}

func TestReorderStable(t *testing.T) {
	a1 := ev(expr.P(1, 1))
	a2 := ev(expr.P(1, 1)) // equal signature, distinct pointer
	events := []*expr.Event{a1, a2}
	Reorder(events)
	if events[0] != a1 || events[1] != a2 {
		t.Fatal("Reorder not stable for equal events")
	}
}

func TestBufferWindowing(t *testing.T) {
	b := NewBuffer(3)
	if b.Window() != 3 {
		t.Fatalf("Window = %d", b.Window())
	}
	if out := b.Add(ev(expr.P(2, 1))); out != nil {
		t.Fatal("premature flush")
	}
	if out := b.Add(ev(expr.P(1, 1))); out != nil {
		t.Fatal("premature flush")
	}
	if b.Pending() != 2 {
		t.Fatalf("Pending = %d", b.Pending())
	}
	out := b.Add(ev(expr.P(3, 1)))
	if len(out) != 3 {
		t.Fatalf("flush returned %d events", len(out))
	}
	if out[0].Pairs()[0].Attr != 1 || out[2].Pairs()[0].Attr != 3 {
		t.Fatalf("flush not reordered: %v %v %v", out[0], out[1], out[2])
	}
	if b.Pending() != 0 {
		t.Fatal("buffer not reset after flush")
	}
}

func TestBufferFlushTail(t *testing.T) {
	b := NewBuffer(10)
	b.Add(ev(expr.P(1, 1)))
	b.Add(ev(expr.P(1, 0)))
	out := b.Flush()
	if len(out) != 2 {
		t.Fatalf("Flush returned %d", len(out))
	}
	if out[0].Pairs()[0].Val != 0 {
		t.Fatal("tail flush not reordered")
	}
	if b.Flush() != nil {
		t.Fatal("empty Flush should return nil")
	}
}

func TestDegenerateWindowFlushesImmediately(t *testing.T) {
	for _, w := range []int{0, 1, -5} {
		b := NewBuffer(w)
		out := b.Add(ev(expr.P(1, 1)))
		if len(out) != 1 {
			t.Fatalf("window %d: Add returned %d events", w, len(out))
		}
	}
}

func TestFlushReturnsOwnedSlice(t *testing.T) {
	b := NewBuffer(2)
	out := func() []*expr.Event {
		b.Add(ev(expr.P(1, 2)))
		return b.Add(ev(expr.P(1, 1)))
	}()
	// Filling the buffer again must not clobber the earlier batch.
	b.Add(ev(expr.P(9, 9)))
	got := b.Add(ev(expr.P(8, 8)))
	if out[0].Pairs()[0].Attr != 1 || got[0].Pairs()[0].Attr != 8 {
		t.Fatal("flushed batches alias each other")
	}
}
