// Package osr implements online stream re-ordering (OSR): buffering a
// bounded window of incoming events and releasing them ordered by index
// locality, so that consecutive events traverse the same partitions and
// clusters. Re-ordering improves cache residency of the compressed
// bitsets and stabilises the adaptive matcher's per-cluster estimates.
//
// Locality order is lexicographic over the event's sorted
// (attribute, value) pairs: events sharing an attribute-set prefix — and
// therefore an index descent prefix — become adjacent. The window bounds
// added latency; the engine's streaming layer adds a wall-clock flush on
// top.
package osr

import (
	"sort"

	"github.com/streammatch/apcm/expr"
)

// Less is the locality order: lexicographic comparison of the events'
// sorted pair lists (attribute first, then value).
func Less(a, b *expr.Event) bool {
	ap, bp := a.Pairs(), b.Pairs()
	n := len(ap)
	if len(bp) < n {
		n = len(bp)
	}
	for i := 0; i < n; i++ {
		if ap[i].Attr != bp[i].Attr {
			return ap[i].Attr < bp[i].Attr
		}
		if ap[i].Val != bp[i].Val {
			return ap[i].Val < bp[i].Val
		}
	}
	return len(ap) < len(bp)
}

// Reorder sorts events in place into locality order. The sort is stable
// so equal-signature events keep their arrival order.
func Reorder(events []*expr.Event) {
	sort.SliceStable(events, func(i, j int) bool { return Less(events[i], events[j]) })
}

// ReorderDistance sorts events in place into locality order (stable,
// like Reorder) and additionally returns the total displacement
// Σ|new index − arrival index| — 0 for an already-ordered stream, large
// for heavily shuffled arrivals. The streaming layer reports it as the
// "reorder distance" metric: how much work OSR is actually doing.
func ReorderDistance(events []*expr.Event) int {
	type tagged struct {
		ev  *expr.Event
		idx int
	}
	tag := make([]tagged, len(events))
	for i, ev := range events {
		tag[i] = tagged{ev, i}
	}
	sort.SliceStable(tag, func(i, j int) bool { return Less(tag[i].ev, tag[j].ev) })
	dist := 0
	for i, t := range tag {
		events[i] = t.ev
		if d := i - t.idx; d < 0 {
			dist -= d
		} else {
			dist += d
		}
	}
	return dist
}

// Buffer is a bounded re-ordering window. Add events; when the window
// fills, Add returns the reordered batch (and retains nothing). The
// caller owns flushing any tail via Flush. Buffer is not safe for
// concurrent use.
type Buffer struct {
	window    int
	buf       []*expr.Event
	trackDist bool
	lastDist  int
}

// TrackDistance enables reorder-displacement measurement: after each
// flush, LastDistance reports Σ|new index − arrival index| for the
// flushed batch. Off by default (it costs one tagged copy per flush).
func (b *Buffer) TrackDistance(on bool) { b.trackDist = on }

// LastDistance returns the displacement of the most recent flush
// (0 unless TrackDistance is enabled).
func (b *Buffer) LastDistance() int { return b.lastDist }

// NewBuffer returns a buffer that flushes every window events. A window
// of zero or one disables re-ordering: every Add flushes immediately.
func NewBuffer(window int) *Buffer {
	if window < 1 {
		window = 1
	}
	return &Buffer{window: window, buf: make([]*expr.Event, 0, window)}
}

// Window returns the configured window size.
func (b *Buffer) Window() int { return b.window }

// Pending returns the number of buffered events.
func (b *Buffer) Pending() int { return len(b.buf) }

// Add buffers e. When the window is full it returns the reordered batch
// and resets; otherwise it returns nil.
func (b *Buffer) Add(e *expr.Event) []*expr.Event {
	b.buf = append(b.buf, e)
	if len(b.buf) >= b.window {
		return b.Flush()
	}
	return nil
}

// Flush returns the buffered events in locality order and resets the
// buffer. It returns nil when empty. The returned slice is owned by the
// caller; the buffer allocates a fresh backing array for the next
// window.
func (b *Buffer) Flush() []*expr.Event {
	if len(b.buf) == 0 {
		return nil
	}
	out := b.buf
	if b.trackDist {
		b.lastDist = ReorderDistance(out)
	} else {
		Reorder(out)
	}
	b.buf = make([]*expr.Event, 0, b.window)
	return out
}
