// Package osr implements online stream re-ordering (OSR): buffering a
// bounded window of incoming events and releasing them ordered by index
// locality, so that consecutive events traverse the same partitions and
// clusters. Re-ordering improves cache residency of the compressed
// bitsets and stabilises the adaptive matcher's per-cluster estimates.
//
// Locality order is lexicographic over the event's sorted
// (attribute, value) pairs: events sharing an attribute-set prefix — and
// therefore an index descent prefix — become adjacent. The window bounds
// added latency; the engine's streaming layer adds a wall-clock flush on
// top.
package osr

import (
	"sort"
	"sync"

	"github.com/streammatch/apcm/expr"
)

// Less is the locality order: lexicographic comparison of the events'
// sorted pair lists (attribute first, then value).
func Less(a, b *expr.Event) bool {
	ap, bp := a.Pairs(), b.Pairs()
	n := len(ap)
	if len(bp) < n {
		n = len(bp)
	}
	for i := 0; i < n; i++ {
		if ap[i].Attr != bp[i].Attr {
			return ap[i].Attr < bp[i].Attr
		}
		if ap[i].Val != bp[i].Val {
			return ap[i].Val < bp[i].Val
		}
	}
	return len(ap) < len(bp)
}

// eventSorter is a concrete sort.Interface over an event slice; unlike
// sort.SliceStable it needs no reflection swapper, and embedded in a
// Buffer it makes the flush sort allocation-free.
type eventSorter struct{ evs []*expr.Event }

func (s *eventSorter) Len() int           { return len(s.evs) }
func (s *eventSorter) Less(i, j int) bool { return Less(s.evs[i], s.evs[j]) }
func (s *eventSorter) Swap(i, j int)      { s.evs[i], s.evs[j] = s.evs[j], s.evs[i] }

// distSorter co-sorts the events with their arrival indexes so the
// displacement can be read off afterwards.
type distSorter struct {
	evs []*expr.Event
	idx []int32
}

func (s *distSorter) Len() int           { return len(s.evs) }
func (s *distSorter) Less(i, j int) bool { return Less(s.evs[i], s.evs[j]) }
func (s *distSorter) Swap(i, j int) {
	s.evs[i], s.evs[j] = s.evs[j], s.evs[i]
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}

// Reorder sorts events in place into locality order. The sort is stable
// so equal-signature events keep their arrival order.
func Reorder(events []*expr.Event) {
	s := eventSorter{evs: events}
	sort.Stable(&s)
}

// ReorderDistance sorts events in place into locality order (stable,
// like Reorder) and additionally returns the total displacement
// Σ|new index − arrival index| — 0 for an already-ordered stream, large
// for heavily shuffled arrivals. The streaming layer reports it as the
// "reorder distance" metric: how much work OSR is actually doing.
func ReorderDistance(events []*expr.Event) int {
	var s distSorter
	return reorderDistance(&s, events, make([]int32, len(events)))
}

// reorderDistance is ReorderDistance with caller-provided scratch: s is
// the sorter to (re)use and idx an index buffer of len(events).
func reorderDistance(s *distSorter, events []*expr.Event, idx []int32) int {
	for i := range idx {
		idx[i] = int32(i)
	}
	s.evs, s.idx = events, idx
	sort.Stable(s)
	s.evs, s.idx = nil, nil
	dist := 0
	for i, from := range idx {
		if d := i - int(from); d < 0 {
			dist -= d
		} else {
			dist += d
		}
	}
	return dist
}

// slab wraps a recycled window backing array; the pool stores pointers
// so Put does not allocate an interface box for the slice header. The
// emptied boxes circulate through slabBoxes so that the steady-state
// Flush/Recycle cycle allocates nothing at all.
type slab struct{ evs []*expr.Event }

var (
	slabs     sync.Pool
	slabBoxes = sync.Pool{New: func() any { return new(slab) }}
)

// newSlab returns an empty window backing array of at least the given
// capacity, recycled when one is available.
func newSlab(window int) []*expr.Event {
	if s, _ := slabs.Get().(*slab); s != nil {
		evs := s.evs
		s.evs = nil
		slabBoxes.Put(s)
		if cap(evs) >= window {
			return evs[:0]
		}
	}
	return make([]*expr.Event, 0, window)
}

// Buffer is a bounded re-ordering window. Add events; when the window
// fills, Add returns the reordered batch (and retains nothing). The
// caller owns flushing any tail via Flush, and may hand the finished
// batch back with Recycle. Buffer is not safe for concurrent use (except
// Recycle, which is).
type Buffer struct {
	window    int
	buf       []*expr.Event
	trackDist bool
	lastDist  int

	// Reused flush scratch: the sorters and the distance index buffer.
	sorter  eventSorter
	dsorter distSorter
	idx     []int32
}

// TrackDistance enables reorder-displacement measurement: after each
// flush, LastDistance reports Σ|new index − arrival index| for the
// flushed batch. Off by default (it costs one index pass per flush).
func (b *Buffer) TrackDistance(on bool) { b.trackDist = on }

// LastDistance returns the displacement of the most recent flush
// (0 unless TrackDistance is enabled).
func (b *Buffer) LastDistance() int { return b.lastDist }

// NewBuffer returns a buffer that flushes every window events. A window
// of zero or one disables re-ordering: every Add flushes immediately.
func NewBuffer(window int) *Buffer {
	if window < 1 {
		window = 1
	}
	return &Buffer{window: window, buf: newSlab(window)}
}

// Window returns the configured window size.
func (b *Buffer) Window() int { return b.window }

// Pending returns the number of buffered events.
func (b *Buffer) Pending() int { return len(b.buf) }

// Add buffers e. When the window is full it returns the reordered batch
// and resets; otherwise it returns nil.
func (b *Buffer) Add(e *expr.Event) []*expr.Event {
	b.buf = append(b.buf, e)
	if len(b.buf) >= b.window {
		return b.Flush()
	}
	return nil
}

// Flush returns the buffered events in locality order and resets the
// buffer. It returns nil when empty. The returned slice is owned by the
// caller until it passes it to Recycle; the next window draws its
// backing array from the recycle pool (or allocates when none fits).
func (b *Buffer) Flush() []*expr.Event {
	if len(b.buf) == 0 {
		return nil
	}
	out := b.buf
	if b.trackDist {
		if cap(b.idx) < len(out) {
			b.idx = make([]int32, len(out))
		}
		b.lastDist = reorderDistance(&b.dsorter, out, b.idx[:len(out)])
	} else {
		b.sorter.evs = out
		sort.Stable(&b.sorter)
		b.sorter.evs = nil
	}
	b.buf = newSlab(b.window)
	return out
}

// Recycle hands a batch obtained from Add or Flush back for reuse by a
// later window. The caller must be completely done with the slice (and
// anything aliasing it). Event references are cleared so the pool does
// not pin them. Safe to call concurrently with other Buffer methods:
// delivery pipelines recycle after the lock protecting the buffer has
// been released.
func (b *Buffer) Recycle(batch []*expr.Event) {
	if cap(batch) == 0 {
		return
	}
	batch = batch[:cap(batch)]
	for i := range batch {
		batch[i] = nil
	}
	s := slabBoxes.Get().(*slab)
	s.evs = batch[:0]
	slabs.Put(s)
}
