package betree

import (
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/internal/matchtest"
	"github.com/streammatch/apcm/workload"
)

func TestConformanceDefault(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New(DefaultConfig()) })
}

func TestConformanceTinyPools(t *testing.T) {
	// MaxPool 2 forces maximal partitioning depth.
	matchtest.RunConformance(t, func() match.Matcher {
		return New(Config{MaxPool: 2, MaxClusterDepth: 32})
	})
}

func TestConformanceHugePools(t *testing.T) {
	// A pool bound larger than any conformance workload degenerates the
	// tree to one pool; matching must still be exact.
	matchtest.RunConformance(t, func() match.Matcher {
		return New(Config{MaxPool: 1 << 20, MaxClusterDepth: 32})
	})
}

func TestConfigSanitize(t *testing.T) {
	tr := New(Config{MaxPool: -1, MaxClusterDepth: 1000})
	if tr.cfg.MaxPool <= 0 || tr.cfg.MaxClusterDepth > 40 {
		t.Fatalf("config not sanitized: %+v", tr.cfg)
	}
}

func TestPartitioningActuallyHappens(t *testing.T) {
	p := workload.Default()
	p.NumAttrs = 20
	p.EventAttrs = 8
	g := workload.MustNew(p)
	tr := New(Config{MaxPool: 8})
	for _, x := range g.Expressions(2000) {
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Stats()
	if s.Parts == 0 {
		t.Fatal("no partitions created on an overflowing workload")
	}
	if s.Exprs != 2000 {
		t.Fatalf("Stats.Exprs = %d", s.Exprs)
	}
	if s.Pools == 0 || s.Nodes < s.Pools {
		t.Fatalf("implausible shape: %+v", s)
	}
}

func TestPruningVisitsFewerPoolsThanTotal(t *testing.T) {
	p := workload.Default()
	p.NumAttrs = 50
	p.EventAttrs = 10
	g := workload.MustNew(p)
	tr := New(Config{MaxPool: 8})
	for _, x := range g.Expressions(3000) {
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	tr.Pools(func(*Pool) { total++ })
	visited := 0
	tr.CollectPools(g.Event(), func(*Pool) { visited++ })
	if visited >= total {
		t.Fatalf("no pruning: visited %d of %d pools", visited, total)
	}
}

func TestPoolGenerationBumps(t *testing.T) {
	tr := New(Config{MaxPool: 100})
	x1 := expr.MustNew(1, expr.Eq(1, 5))
	if err := tr.Insert(x1); err != nil {
		t.Fatal(err)
	}
	var gen0 uint64
	tr.Pools(func(p *Pool) { gen0 = p.Gen })
	if err := tr.Insert(expr.MustNew(2, expr.Eq(1, 6))); err != nil {
		t.Fatal(err)
	}
	var gen1 uint64
	tr.Pools(func(p *Pool) { gen1 = p.Gen })
	if gen1 <= gen0 {
		t.Fatalf("insert did not bump pool generation: %d -> %d", gen0, gen1)
	}
	tr.Delete(1)
	var gen2 uint64
	tr.Pools(func(p *Pool) { gen2 = p.Gen })
	if gen2 <= gen1 {
		t.Fatalf("delete did not bump pool generation: %d -> %d", gen1, gen2)
	}
}

func TestEqualityBucketRouting(t *testing.T) {
	// Equality-only expressions on one attribute should spread over
	// per-value buckets: matching an event must visit only its bucket.
	tr := New(Config{MaxPool: 4})
	for i := 0; i < 100; i++ {
		x := expr.MustNew(expr.ID(i+1), expr.Eq(1, expr.Value(i%10)), expr.Eq(2, expr.Value(i)))
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.MatchAppend(nil, expr.MustEvent(expr.P(1, 3), expr.P(2, 13)))
	if len(got) != 1 || got[0] != 14 {
		t.Fatalf("got %v, want [14]", got)
	}
	visited := 0
	tr.CollectPools(expr.MustEvent(expr.P(1, 3), expr.P(2, 13)), func(p *Pool) { visited += len(p.Exprs) })
	if visited >= 100 {
		t.Fatalf("equality buckets not pruning: visited %d expressions", visited)
	}
}

func TestRangePredicatesCluster(t *testing.T) {
	tr := New(Config{MaxPool: 4})
	// Ranges in two far-apart regions; events in one region must not
	// visit the other's expressions.
	for i := 0; i < 50; i++ {
		lo := expr.Value(i * 10)
		if err := tr.Insert(expr.MustNew(expr.ID(i+1), expr.Rng(1, lo, lo+5))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		lo := expr.Value(1_000_000 + i*10)
		if err := tr.Insert(expr.MustNew(expr.ID(100+i), expr.Rng(1, lo, lo+5))); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.MatchAppend(nil, expr.MustEvent(expr.P(1, 12)))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
}

func TestDeleteThenReuseNode(t *testing.T) {
	tr := New(Config{MaxPool: 2})
	var xs []*expr.Expression
	for i := 0; i < 40; i++ {
		x := expr.MustNew(expr.ID(i+1), expr.Eq(1, expr.Value(i%4)), expr.Eq(2, expr.Value(i%8)))
		xs = append(xs, x)
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range xs {
		if !tr.Delete(x.ID) {
			t.Fatalf("delete %d failed", x.ID)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d after deleting all", tr.Size())
	}
	// Re-insert into the (now skeletal) tree.
	for _, x := range xs {
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.MatchAppend(nil, expr.MustEvent(expr.P(1, 1), expr.P(2, 5)))
	want := 0
	for _, x := range xs {
		if x.MatchesEvent(expr.MustEvent(expr.P(1, 1), expr.P(2, 5))) {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("after churn got %d matches, want %d", len(got), want)
	}
}

func TestNonIndexableOnlyExpressionsStayInPools(t *testing.T) {
	tr := New(Config{MaxPool: 2})
	for i := 0; i < 20; i++ {
		if err := tr.Insert(expr.MustNew(expr.ID(i+1), expr.Ne(1, expr.Value(i)))); err != nil {
			t.Fatal(err)
		}
	}
	// All 20 share one unsplittable pool (NE is non-indexable); matching
	// must still be correct.
	got := tr.MatchAppend(nil, expr.MustEvent(expr.P(1, 0)))
	if len(got) != 19 {
		t.Fatalf("got %d matches, want 19", len(got))
	}
	if s := tr.Stats(); s.Parts != 0 {
		t.Fatalf("partitioned on a non-indexable attribute: %+v", s)
	}
}

func TestMemBytesAndStats(t *testing.T) {
	tr := New(DefaultConfig())
	if tr.MemBytes() <= 0 {
		t.Fatal("empty tree should still report structural bytes")
	}
	g := workload.MustNew(workload.Default())
	for _, x := range g.Expressions(500) {
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	if tr.MemBytes() < 500*8 {
		t.Fatalf("MemBytes implausibly small: %d", tr.MemBytes())
	}
	s := tr.Stats()
	if s.MaxPool == 0 {
		t.Fatal("Stats.MaxPool should be positive")
	}
}

func TestExtremeValueSpans(t *testing.T) {
	tr := New(Config{MaxPool: 2})
	xs := []*expr.Expression{
		expr.MustNew(1, expr.Le(1, expr.MinValue+1)), // span [min, min+1]
		expr.MustNew(2, expr.Ge(1, expr.MaxValue-1)), // span [max-1, max]
		expr.MustNew(3, expr.Rng(1, expr.MinValue, expr.MaxValue)),
		expr.MustNew(4, expr.Eq(1, expr.MinValue)),
		expr.MustNew(5, expr.Eq(1, expr.MaxValue)),
	}
	for _, x := range xs {
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		v    expr.Value
		want map[expr.ID]bool
	}{
		{expr.MinValue, map[expr.ID]bool{1: true, 3: true, 4: true}},
		{expr.MaxValue, map[expr.ID]bool{2: true, 3: true, 5: true}},
		{0, map[expr.ID]bool{3: true}},
	}
	for _, c := range cases {
		got := tr.MatchAppend(nil, expr.MustEvent(expr.P(1, c.v)))
		if len(got) != len(c.want) {
			t.Fatalf("v=%d: got %v, want %v", c.v, got, c.want)
		}
		for _, id := range got {
			if !c.want[id] {
				t.Fatalf("v=%d: unexpected id %d", c.v, id)
			}
		}
	}
}
