// Package betree implements a BE-Tree-style index for Boolean
// expressions over a high-dimensional discrete space (Sadoghi &
// Jacobsen, ICDE 2011): the sequential state-of-the-art matcher that the
// compressed matchers in internal/core build on and are compared
// against.
//
// Structure. Every tree node holds a pool of resting expressions and a
// set of attribute partitions. When a pool overflows, the node picks the
// attribute covering the most pooled expressions (two-phase space
// partitioning) and moves those expressions into that attribute's
// partition. Inside a partition, space clustering places each expression
// by the span of its most selective predicate on the partition
// attribute: zero-width spans land in per-value equality buckets, wider
// spans descend a binary halving tree as deep as they fit. Matching an
// event descends, for each event attribute, into that attribute's
// partition (the equality bucket of the event value plus the halving
// path containing it) and verifies the pooled expressions it meets.
//
// The tree exposes its pools (CollectPools / Pools) so that the
// compressed matcher can compile them into bitset clusters while reusing
// the tree's pruning.
package betree

import (
	"fmt"
	"math/bits"

	"github.com/streammatch/apcm/expr"
)

// Config tunes the tree.
type Config struct {
	// MaxPool is the pool size that triggers partitioning. Larger pools
	// mean fewer, bigger clusters — cheaper for the compressed matcher,
	// more verification work for the sequential one.
	MaxPool int
	// MaxClusterDepth bounds the binary halving descent inside a
	// partition's range-cluster tree.
	MaxClusterDepth int
}

// DefaultConfig is tuned for sequential matching.
func DefaultConfig() Config {
	return Config{MaxPool: 32, MaxClusterDepth: 32}
}

func (c *Config) sanitize() {
	if c.MaxPool <= 0 {
		c.MaxPool = 32
	}
	if c.MaxClusterDepth <= 0 || c.MaxClusterDepth > 40 {
		c.MaxClusterDepth = 32
	}
}

// Pool is a leaf-resident set of expressions. Gen increments on every
// mutation so that derived structures (compressed clusters) can detect
// staleness.
type Pool struct {
	Gen   uint64
	Exprs []*expr.Expression
}

func (p *Pool) remove(id expr.ID) bool {
	for i, x := range p.Exprs {
		if x.ID == id {
			last := len(p.Exprs) - 1
			p.Exprs[i] = p.Exprs[last]
			p.Exprs[last] = nil
			p.Exprs = p.Exprs[:last]
			p.Gen++
			return true
		}
	}
	return false
}

type node struct {
	pool Pool
	// parts is sorted by partition attribute. The descent visits it with
	// a merge-join against the event's sorted pair list, and inserts
	// binary-search it — a map here cost a hash probe per event pair per
	// visited node, which the E1 profile put among the hottest
	// instructions in the whole match path.
	parts []*partition
	// splitFailAt remembers the pool size at the last failed split
	// attempt, so degenerate pools do not rescore on every insert.
	splitFailAt int
}

// part returns the partition on attr, or nil.
func (n *node) part(a expr.AttrID) *partition {
	lo, hi := 0, len(n.parts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if n.parts[mid].attr < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.parts) && n.parts[lo].attr == a {
		return n.parts[lo]
	}
	return nil
}

// addPart inserts part keeping n.parts sorted by attribute.
func (n *node) addPart(part *partition) {
	i := len(n.parts)
	n.parts = append(n.parts, part)
	for i > 0 && n.parts[i-1].attr > part.attr {
		n.parts[i] = n.parts[i-1]
		i--
	}
	n.parts[i] = part
}

type partition struct {
	attr expr.AttrID
	eq   eqTable // value → equality-bucket node
	root *cnode  // range-cluster tree over the full domain
}

// eqTable is an open-addressed value→node table. The descent performs
// exactly one lookup per (event pair, partition) visit, and the Go map
// it replaces spent more time in hash plumbing than the rest of the
// node visit combined; a flat power-of-two table with Fibonacci
// hashing and linear probing makes the common case one multiply and a
// couple of probes over contiguous memory. Key and pointer live in one
// entry so a probe touches a single cache line, and occupancy is kept
// at or below half so the expected probe count of a *miss* — the
// common outcome, most event values have no equality bucket — stays
// around two. Buckets are never deleted (empty equality buckets
// persist until their node is garbage), which keeps probing
// tombstone-free.
type eqTable struct {
	entries []eqEntry
	n       int
	shift   uint32 // 32 - log2(len), for the multiplicative hash
}

type eqEntry struct {
	val expr.Value
	n   *node // nil marks an empty slot
}

func (t *eqTable) get(v expr.Value) *node {
	if t.n == 0 {
		return nil
	}
	mask := uint32(len(t.entries) - 1)
	i := (uint32(v) * 2654435769) >> t.shift
	for {
		e := &t.entries[i]
		if e.n == nil || e.val == v {
			return e.n
		}
		i = (i + 1) & mask
	}
}

// put inserts a new key. The caller has already checked get(v) == nil.
func (t *eqTable) put(v expr.Value, nd *node) {
	if 2*(t.n+1) > len(t.entries) {
		t.grow()
	}
	mask := uint32(len(t.entries) - 1)
	i := (uint32(v) * 2654435769) >> t.shift
	for t.entries[i].n != nil {
		i = (i + 1) & mask
	}
	t.entries[i] = eqEntry{val: v, n: nd}
	t.n++
}

func (t *eqTable) grow() {
	size := 8
	if len(t.entries) > 0 {
		size = 2 * len(t.entries)
	}
	old := t.entries
	t.entries = make([]eqEntry, size)
	t.shift = 32 - uint32(bits.TrailingZeros(uint(size)))
	t.n = 0
	for _, e := range old {
		if e.n != nil {
			t.put(e.val, e.n)
		}
	}
}

// each visits every bucket node.
func (t *eqTable) each(fn func(*node)) {
	for _, e := range t.entries {
		if e.n != nil {
			fn(e.n)
		}
	}
}

// cnode is a node of a partition's range-cluster tree. The tree is
// *path-compressed*: the halving descent only ever produces canonical
// dyadic ranges (each depth-d range is one of the 2^d aligned
// 2^(32-d)-wide slices of the biased value domain), so a chain of
// empty intermediate halvings carries no information and is never
// materialised. A cnode exists only if it rests expressions (n != nil)
// or branches two materialised subtrees; left/right point at the
// nearest materialised descendant inside the lower/upper half, at any
// depth. Before compression the event walk chased up to
// MaxClusterDepth pointers per (pair, partition) — almost all of them
// cache-missing empty intermediates; the E1 profile showed that chain
// walk as the single hottest loop in the match path.
type cnode struct {
	lo, hi      expr.Value
	n           *node
	left, right *cnode
}

// biased maps a value to its order-preserving unsigned image, in which
// canonical halving ranges are aligned power-of-two slices.
func biased(v expr.Value) uint32 { return uint32(v) ^ 0x80000000 }

func unbiased(u uint32) expr.Value { return expr.Value(u ^ 0x80000000) }

// dyadicTarget returns the range a span [lo,hi] (lo < hi) rests at:
// the deepest canonical range containing it, at most maxDepth halvings
// below the full domain. This is exactly where the uncompressed
// descent stopped — it halved while the span fit in a half, i.e. while
// the biased endpoints shared another leading bit.
func dyadicTarget(lo, hi expr.Value, maxDepth int) (expr.Value, expr.Value) {
	a, b := biased(lo), biased(hi)
	d := bits.LeadingZeros32(a ^ b)
	if d > maxDepth {
		d = maxDepth
	}
	if d == 0 {
		return expr.MinValue, expr.MaxValue
	}
	shift := uint(32 - d)
	tlo := a >> shift << shift
	mask := uint32(1)<<shift - 1
	return unbiased(tlo), unbiased(tlo | mask)
}

// dyadicLCA returns the deepest canonical range containing two
// disjoint canonical ranges, given their lower bounds.
func dyadicLCA(l1, l2 expr.Value) (expr.Value, expr.Value) {
	a, b := biased(l1), biased(l2)
	shift := uint(32 - bits.LeadingZeros32(a^b))
	if shift >= 32 {
		return expr.MinValue, expr.MaxValue
	}
	tlo := a >> shift << shift
	mask := uint32(1)<<shift - 1
	return unbiased(tlo), unbiased(tlo | mask)
}

// Tree is a BE-Tree. Not safe for concurrent mutation; concurrent
// matching is safe only in the absence of writers.
type Tree struct {
	cfg  Config
	root *node
	loc  map[expr.ID]*node // owning node for deletion

	numNodes  int
	numParts  int
	numCnodes int
}

// New returns an empty tree with the given configuration.
func New(cfg Config) *Tree {
	cfg.sanitize()
	return &Tree{
		cfg:      cfg,
		root:     &node{},
		loc:      make(map[expr.ID]*node),
		numNodes: 1,
	}
}

// Size returns the number of indexed expressions.
func (t *Tree) Size() int { return len(t.loc) }

// Insert adds x to the tree.
func (t *Tree) Insert(x *expr.Expression) error {
	_, err := t.InsertPool(x)
	return err
}

// InsertPool is Insert but additionally returns the pool the expression
// came to rest in, which derived structures (compressed clusters) use
// for incremental maintenance. Note that an insertion can overflow the
// pool and trigger a split, relocating other expressions; the returned
// pool's generation reflects every change, so a derived structure that
// is more than one generation behind must recompile.
func (t *Tree) InsertPool(x *expr.Expression) (*Pool, error) {
	if _, dup := t.loc[x.ID]; dup {
		return nil, fmt.Errorf("betree: duplicate expression id %d", x.ID)
	}
	t.insert(t.root, x, nil)
	return &t.loc[x.ID].pool, nil
}

// used tracks partition attributes on the path as a small linked list;
// paths are short so lookup is a scan.
type used struct {
	attr expr.AttrID
	prev *used
}

func (u *used) has(a expr.AttrID) bool {
	for ; u != nil; u = u.prev {
		if u.attr == a {
			return true
		}
	}
	return false
}

func (t *Tree) insert(n *node, x *expr.Expression, u *used) {
	// Route into an existing partition when one of the expression's
	// indexable attributes already has one here.
	if len(n.parts) > 0 {
		for i := range x.Preds {
			p := &x.Preds[i]
			if !p.Indexable() || u.has(p.Attr) {
				continue
			}
			if part := n.part(p.Attr); part != nil {
				t.insertIntoPartition(part, x, u)
				return
			}
		}
	}
	n.pool.Exprs = append(n.pool.Exprs, x)
	n.pool.Gen++
	t.loc[x.ID] = n
	if len(n.pool.Exprs) > t.cfg.MaxPool && len(n.pool.Exprs) > n.splitFailAt+n.splitFailAt/2 {
		t.split(n, u)
	}
}

// bestPredOn returns x's most selective indexable predicate on attr.
func bestPredOn(x *expr.Expression, attr expr.AttrID) *expr.Predicate {
	var best *expr.Predicate
	var bestWidth uint64
	for i := range x.Preds {
		p := &x.Preds[i]
		if p.Attr != attr || !p.Indexable() {
			continue
		}
		lo, hi := p.Span()
		w := uint64(int64(hi) - int64(lo))
		if best == nil || w < bestWidth {
			best, bestWidth = p, w
		}
	}
	return best
}

func (t *Tree) insertIntoPartition(part *partition, x *expr.Expression, u *used) {
	p := bestPredOn(x, part.attr)
	u2 := &used{attr: part.attr, prev: u}
	lo, hi := p.Span()
	if lo == hi {
		bn := part.eq.get(lo)
		if bn == nil {
			bn = &node{}
			t.numNodes++
			part.eq.put(lo, bn)
		}
		t.insert(bn, x, u2)
		return
	}
	// Descend the compressed tree toward the span's resting range,
	// materialising at most two cnodes (a branch point and the target).
	tlo, thi := dyadicTarget(lo, hi, t.cfg.MaxClusterDepth)
	c := part.root
	for c.lo != tlo || c.hi != thi {
		// The target is strictly inside c: pick the half it lies in.
		link := &c.left
		if thi > midpoint(c.lo, c.hi) {
			link = &c.right
		}
		d := *link
		switch {
		case d == nil:
			// Empty half: the target becomes its materialised root.
			c = &cnode{lo: tlo, hi: thi}
			t.numCnodes++
			*link = c
		case d.lo <= tlo && thi <= d.hi:
			// Target at or below d: keep walking.
			c = d
		case tlo <= d.lo && d.hi <= thi:
			// d below the target: splice the target in above it.
			c = &cnode{lo: tlo, hi: thi}
			t.numCnodes++
			if d.hi <= midpoint(tlo, thi) {
				c.left = d
			} else {
				c.right = d
			}
			*link = c
		default:
			// Disjoint: branch at their lowest common canonical range,
			// which holds them on opposite sides.
			blo, bhi := dyadicLCA(d.lo, tlo)
			br := &cnode{lo: blo, hi: bhi}
			c = &cnode{lo: tlo, hi: thi}
			t.numCnodes += 2
			if thi <= midpoint(blo, bhi) {
				br.left, br.right = c, d
			} else {
				br.left, br.right = d, c
			}
			*link = br
		}
	}
	if c.n == nil {
		c.n = &node{}
		t.numNodes++
	}
	t.insert(c.n, x, u2)
}

// midpoint halves [lo,hi] without int32 overflow.
func midpoint(lo, hi expr.Value) expr.Value {
	return expr.Value((int64(lo) + int64(hi)) >> 1)
}

// split moves pooled expressions into a new partition on the attribute
// that covers the most of them. It repeats until the pool fits or no
// attribute helps.
func (t *Tree) split(n *node, u *used) {
	for len(n.pool.Exprs) > t.cfg.MaxPool {
		attr, count := t.choosePartitionAttr(n, u)
		if count < 2 {
			n.splitFailAt = len(n.pool.Exprs)
			return
		}
		part := &partition{
			attr: attr,
			root: &cnode{lo: expr.MinValue, hi: expr.MaxValue},
		}
		t.numCnodes++
		n.addPart(part)
		t.numParts++

		// Move covered expressions out of the pool.
		kept := n.pool.Exprs[:0]
		var moved []*expr.Expression
		for _, x := range n.pool.Exprs {
			if bestPredOn(x, attr) != nil {
				moved = append(moved, x)
			} else {
				kept = append(kept, x)
			}
		}
		for i := len(kept); i < len(n.pool.Exprs); i++ {
			n.pool.Exprs[i] = nil
		}
		n.pool.Exprs = kept
		n.pool.Gen++
		for _, x := range moved {
			delete(t.loc, x.ID)
			t.insertIntoPartition(part, x, u)
		}
	}
}

// choosePartitionAttr scores pool expressions by indexable attribute and
// returns the attribute covering the most expressions that is not
// already used on the path and not already partitioned at this node.
func (t *Tree) choosePartitionAttr(n *node, u *used) (expr.AttrID, int) {
	counts := make(map[expr.AttrID]int)
	for _, x := range n.pool.Exprs {
		seen := expr.AttrID(0)
		first := true
		for i := range x.Preds {
			p := &x.Preds[i]
			if !p.Indexable() {
				continue
			}
			if !first && p.Attr == seen {
				continue // count each attribute once per expression
			}
			seen, first = p.Attr, false
			if u.has(p.Attr) {
				continue
			}
			if n.part(p.Attr) != nil {
				// A partition already exists here; expressions with this
				// attribute were routed at insert time, so re-counting it
				// would recreate it uselessly.
				continue
			}
			counts[p.Attr]++
		}
	}
	var bestAttr expr.AttrID
	bestCount := 0
	for a, c := range counts {
		if c > bestCount || (c == bestCount && a < bestAttr) {
			bestAttr, bestCount = a, c
		}
	}
	return bestAttr, bestCount
}

// Delete removes the expression with the given id.
func (t *Tree) Delete(id expr.ID) bool {
	_, ok := t.DeletePool(id)
	return ok
}

// DeletePool is Delete but additionally returns the pool the expression
// was removed from.
func (t *Tree) DeletePool(id expr.ID) (*Pool, bool) {
	n, ok := t.loc[id]
	if !ok {
		return nil, false
	}
	if !n.pool.remove(id) {
		// loc and pools are maintained together; disagreement is a bug.
		panic(fmt.Sprintf("betree: location map points to a pool without id %d", id))
	}
	delete(t.loc, id)
	return &n.pool, true
}

// MatchAppend appends the ids of all expressions matching e to dst.
func (t *Tree) MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID {
	t.visit(t.root, e, func(p *Pool) {
		for _, x := range p.Exprs {
			if x.MatchesEvent(e) {
				dst = append(dst, x.ID)
			}
		}
	})
	return dst
}

// CollectPools invokes fn on every non-empty pool that could contain a
// match for e (the compressed matcher's candidate clusters).
func (t *Tree) CollectPools(e *expr.Event, fn func(*Pool)) {
	t.visit(t.root, e, fn)
}

func (t *Tree) visit(n *node, e *expr.Event, fn func(*Pool)) {
	if len(n.pool.Exprs) > 0 {
		fn(&n.pool)
	}
	if len(n.parts) == 0 {
		return
	}
	// Both the event's pairs and the node's partitions are sorted by
	// attribute: merge-join instead of a map probe per pair.
	pairs, parts := e.Pairs(), n.parts
	for i, j := 0, 0; i < len(pairs) && j < len(parts); {
		switch a, b := pairs[i].Attr, parts[j].attr; {
		case a < b:
			i++
		case a > b:
			j++
		default:
			part, val := parts[j], pairs[i].Val
			i++
			j++
			if bn := part.eq.get(val); bn != nil {
				t.visit(bn, e, fn)
			}
			for c := part.root; c != nil && val >= c.lo && val <= c.hi; {
				if c.n != nil {
					t.visit(c.n, e, fn)
				}
				if val <= midpoint(c.lo, c.hi) {
					c = c.left
				} else {
					c = c.right
				}
			}
		}
	}
}

// CollectPoolsAppend is CollectPools in append style: candidate pools
// for e are appended to dst and the extended slice returned. It exists
// for the hot match path — the visitor form forces a closure allocation
// per call on the caller, this form performs none.
func (t *Tree) CollectPoolsAppend(dst []*Pool, e *expr.Event) []*Pool {
	return t.collect(t.root, e, dst)
}

//apcm:hotpath
func (t *Tree) collect(n *node, e *expr.Event, dst []*Pool) []*Pool {
	if len(n.pool.Exprs) > 0 {
		dst = append(dst, &n.pool)
	}
	if len(n.parts) == 0 {
		return dst
	}
	// Merge-join of the sorted pair and partition lists; see visit.
	pairs, parts := e.Pairs(), n.parts
	for i, j := 0, 0; i < len(pairs) && j < len(parts); {
		switch a, b := pairs[i].Attr, parts[j].attr; {
		case a < b:
			i++
		case a > b:
			j++
		default:
			part, val := parts[j], pairs[i].Val
			i++
			j++
			if bn := part.eq.get(val); bn != nil {
				dst = t.collect(bn, e, dst)
			}
			for c := part.root; c != nil && val >= c.lo && val <= c.hi; {
				if c.n != nil {
					dst = t.collect(c.n, e, dst)
				}
				if val <= midpoint(c.lo, c.hi) {
					c = c.left
				} else {
					c = c.right
				}
			}
		}
	}
	return dst
}

// ForEach visits every indexed expression. fn returning false stops the
// walk. Must not run concurrently with Insert or Delete.
func (t *Tree) ForEach(fn func(*expr.Expression) bool) {
	stopped := false
	t.Pools(func(p *Pool) {
		if stopped {
			return
		}
		for _, x := range p.Exprs {
			if !fn(x) {
				stopped = true
				return
			}
		}
	})
}

// Pools invokes fn on every non-empty pool in the tree (compilation
// sweep for the compressed matcher).
func (t *Tree) Pools(fn func(*Pool)) {
	t.pools(t.root, fn)
}

func (t *Tree) pools(n *node, fn func(*Pool)) {
	if len(n.pool.Exprs) > 0 {
		fn(&n.pool)
	}
	for _, part := range n.parts {
		part.eq.each(func(bn *node) { t.pools(bn, fn) })
		var walk func(*cnode)
		walk = func(c *cnode) {
			if c == nil {
				return
			}
			if c.n != nil {
				t.pools(c.n, fn)
			}
			walk(c.left)
			walk(c.right)
		}
		walk(part.root)
	}
}

// Stats describes the tree's shape.
type Stats struct {
	Exprs   int
	Nodes   int
	Parts   int
	Cnodes  int
	MaxPool int // largest pool observed
	Pools   int // non-empty pools
}

// Stats computes shape statistics by full traversal.
func (t *Tree) Stats() Stats {
	s := Stats{Exprs: len(t.loc), Nodes: t.numNodes, Parts: t.numParts, Cnodes: t.numCnodes}
	t.Pools(func(p *Pool) {
		s.Pools++
		if len(p.Exprs) > s.MaxPool {
			s.MaxPool = len(p.Exprs)
		}
	})
	return s
}

// MemBytes estimates the heap footprint of the tree structure (nodes,
// partitions, cluster nodes, pool slices and the location map); the
// expressions themselves are shared with the caller and excluded.
func (t *Tree) MemBytes() int64 {
	var b int64
	b += int64(t.numNodes) * 64
	b += int64(t.numParts) * 64
	b += int64(t.numCnodes) * 48
	b += int64(len(t.loc)) * 24
	t.Pools(func(p *Pool) { b += int64(cap(p.Exprs)) * 8 })
	return b
}
