// Package betree implements a BE-Tree-style index for Boolean
// expressions over a high-dimensional discrete space (Sadoghi &
// Jacobsen, ICDE 2011): the sequential state-of-the-art matcher that the
// compressed matchers in internal/core build on and are compared
// against.
//
// Structure. Every tree node holds a pool of resting expressions and a
// set of attribute partitions. When a pool overflows, the node picks the
// attribute covering the most pooled expressions (two-phase space
// partitioning) and moves those expressions into that attribute's
// partition. Inside a partition, space clustering places each expression
// by the span of its most selective predicate on the partition
// attribute: zero-width spans land in per-value equality buckets, wider
// spans descend a binary halving tree as deep as they fit. Matching an
// event descends, for each event attribute, into that attribute's
// partition (the equality bucket of the event value plus the halving
// path containing it) and verifies the pooled expressions it meets.
//
// The tree exposes its pools (CollectPools / Pools) so that the
// compressed matcher can compile them into bitset clusters while reusing
// the tree's pruning.
package betree

import (
	"fmt"

	"github.com/streammatch/apcm/expr"
)

// Config tunes the tree.
type Config struct {
	// MaxPool is the pool size that triggers partitioning. Larger pools
	// mean fewer, bigger clusters — cheaper for the compressed matcher,
	// more verification work for the sequential one.
	MaxPool int
	// MaxClusterDepth bounds the binary halving descent inside a
	// partition's range-cluster tree.
	MaxClusterDepth int
}

// DefaultConfig is tuned for sequential matching.
func DefaultConfig() Config {
	return Config{MaxPool: 32, MaxClusterDepth: 32}
}

func (c *Config) sanitize() {
	if c.MaxPool <= 0 {
		c.MaxPool = 32
	}
	if c.MaxClusterDepth <= 0 || c.MaxClusterDepth > 40 {
		c.MaxClusterDepth = 32
	}
}

// Pool is a leaf-resident set of expressions. Gen increments on every
// mutation so that derived structures (compressed clusters) can detect
// staleness.
type Pool struct {
	Gen   uint64
	Exprs []*expr.Expression
}

func (p *Pool) remove(id expr.ID) bool {
	for i, x := range p.Exprs {
		if x.ID == id {
			last := len(p.Exprs) - 1
			p.Exprs[i] = p.Exprs[last]
			p.Exprs[last] = nil
			p.Exprs = p.Exprs[:last]
			p.Gen++
			return true
		}
	}
	return false
}

type node struct {
	pool  Pool
	parts map[expr.AttrID]*partition
	// splitFailAt remembers the pool size at the last failed split
	// attempt, so degenerate pools do not rescore on every insert.
	splitFailAt int
}

type partition struct {
	attr expr.AttrID
	eq   map[expr.Value]*node
	root *cnode // range-cluster tree over the full domain
}

type cnode struct {
	lo, hi      expr.Value
	n           *node
	left, right *cnode
}

// Tree is a BE-Tree. Not safe for concurrent mutation; concurrent
// matching is safe only in the absence of writers.
type Tree struct {
	cfg  Config
	root *node
	loc  map[expr.ID]*node // owning node for deletion

	numNodes  int
	numParts  int
	numCnodes int
}

// New returns an empty tree with the given configuration.
func New(cfg Config) *Tree {
	cfg.sanitize()
	return &Tree{
		cfg:      cfg,
		root:     &node{},
		loc:      make(map[expr.ID]*node),
		numNodes: 1,
	}
}

// Size returns the number of indexed expressions.
func (t *Tree) Size() int { return len(t.loc) }

// Insert adds x to the tree.
func (t *Tree) Insert(x *expr.Expression) error {
	_, err := t.InsertPool(x)
	return err
}

// InsertPool is Insert but additionally returns the pool the expression
// came to rest in, which derived structures (compressed clusters) use
// for incremental maintenance. Note that an insertion can overflow the
// pool and trigger a split, relocating other expressions; the returned
// pool's generation reflects every change, so a derived structure that
// is more than one generation behind must recompile.
func (t *Tree) InsertPool(x *expr.Expression) (*Pool, error) {
	if _, dup := t.loc[x.ID]; dup {
		return nil, fmt.Errorf("betree: duplicate expression id %d", x.ID)
	}
	t.insert(t.root, x, nil)
	return &t.loc[x.ID].pool, nil
}

// used tracks partition attributes on the path as a small linked list;
// paths are short so lookup is a scan.
type used struct {
	attr expr.AttrID
	prev *used
}

func (u *used) has(a expr.AttrID) bool {
	for ; u != nil; u = u.prev {
		if u.attr == a {
			return true
		}
	}
	return false
}

func (t *Tree) insert(n *node, x *expr.Expression, u *used) {
	// Route into an existing partition when one of the expression's
	// indexable attributes already has one here.
	if len(n.parts) > 0 {
		for i := range x.Preds {
			p := &x.Preds[i]
			if !p.Indexable() || u.has(p.Attr) {
				continue
			}
			if part, ok := n.parts[p.Attr]; ok {
				t.insertIntoPartition(part, x, u)
				return
			}
		}
	}
	n.pool.Exprs = append(n.pool.Exprs, x)
	n.pool.Gen++
	t.loc[x.ID] = n
	if len(n.pool.Exprs) > t.cfg.MaxPool && len(n.pool.Exprs) > n.splitFailAt+n.splitFailAt/2 {
		t.split(n, u)
	}
}

// bestPredOn returns x's most selective indexable predicate on attr.
func bestPredOn(x *expr.Expression, attr expr.AttrID) *expr.Predicate {
	var best *expr.Predicate
	var bestWidth uint64
	for i := range x.Preds {
		p := &x.Preds[i]
		if p.Attr != attr || !p.Indexable() {
			continue
		}
		lo, hi := p.Span()
		w := uint64(int64(hi) - int64(lo))
		if best == nil || w < bestWidth {
			best, bestWidth = p, w
		}
	}
	return best
}

func (t *Tree) insertIntoPartition(part *partition, x *expr.Expression, u *used) {
	p := bestPredOn(x, part.attr)
	u2 := &used{attr: part.attr, prev: u}
	lo, hi := p.Span()
	if lo == hi {
		bn := part.eq[lo]
		if bn == nil {
			bn = &node{}
			t.numNodes++
			part.eq[lo] = bn
		}
		t.insert(bn, x, u2)
		return
	}
	c := part.root
	for depth := 0; depth < t.cfg.MaxClusterDepth; depth++ {
		mid := midpoint(c.lo, c.hi)
		if hi <= mid {
			if c.left == nil {
				c.left = &cnode{lo: c.lo, hi: mid}
				t.numCnodes++
			}
			c = c.left
		} else if lo > mid {
			if c.right == nil {
				c.right = &cnode{lo: mid + 1, hi: c.hi}
				t.numCnodes++
			}
			c = c.right
		} else {
			break // span straddles the midpoint; rest here
		}
	}
	if c.n == nil {
		c.n = &node{}
		t.numNodes++
	}
	t.insert(c.n, x, u2)
}

// midpoint halves [lo,hi] without int32 overflow.
func midpoint(lo, hi expr.Value) expr.Value {
	return expr.Value((int64(lo) + int64(hi)) >> 1)
}

// split moves pooled expressions into a new partition on the attribute
// that covers the most of them. It repeats until the pool fits or no
// attribute helps.
func (t *Tree) split(n *node, u *used) {
	for len(n.pool.Exprs) > t.cfg.MaxPool {
		attr, count := t.choosePartitionAttr(n, u)
		if count < 2 {
			n.splitFailAt = len(n.pool.Exprs)
			return
		}
		part := &partition{
			attr: attr,
			eq:   make(map[expr.Value]*node),
			root: &cnode{lo: expr.MinValue, hi: expr.MaxValue},
		}
		t.numCnodes++
		if n.parts == nil {
			n.parts = make(map[expr.AttrID]*partition)
		}
		n.parts[attr] = part
		t.numParts++

		// Move covered expressions out of the pool.
		kept := n.pool.Exprs[:0]
		var moved []*expr.Expression
		for _, x := range n.pool.Exprs {
			if bestPredOn(x, attr) != nil {
				moved = append(moved, x)
			} else {
				kept = append(kept, x)
			}
		}
		for i := len(kept); i < len(n.pool.Exprs); i++ {
			n.pool.Exprs[i] = nil
		}
		n.pool.Exprs = kept
		n.pool.Gen++
		for _, x := range moved {
			delete(t.loc, x.ID)
			t.insertIntoPartition(part, x, u)
		}
	}
}

// choosePartitionAttr scores pool expressions by indexable attribute and
// returns the attribute covering the most expressions that is not
// already used on the path and not already partitioned at this node.
func (t *Tree) choosePartitionAttr(n *node, u *used) (expr.AttrID, int) {
	counts := make(map[expr.AttrID]int)
	for _, x := range n.pool.Exprs {
		seen := expr.AttrID(0)
		first := true
		for i := range x.Preds {
			p := &x.Preds[i]
			if !p.Indexable() {
				continue
			}
			if !first && p.Attr == seen {
				continue // count each attribute once per expression
			}
			seen, first = p.Attr, false
			if u.has(p.Attr) {
				continue
			}
			if _, exists := n.parts[p.Attr]; exists {
				// A partition already exists here; expressions with this
				// attribute were routed at insert time, so re-counting it
				// would recreate it uselessly.
				continue
			}
			counts[p.Attr]++
		}
	}
	var bestAttr expr.AttrID
	bestCount := 0
	for a, c := range counts {
		if c > bestCount || (c == bestCount && a < bestAttr) {
			bestAttr, bestCount = a, c
		}
	}
	return bestAttr, bestCount
}

// Delete removes the expression with the given id.
func (t *Tree) Delete(id expr.ID) bool {
	_, ok := t.DeletePool(id)
	return ok
}

// DeletePool is Delete but additionally returns the pool the expression
// was removed from.
func (t *Tree) DeletePool(id expr.ID) (*Pool, bool) {
	n, ok := t.loc[id]
	if !ok {
		return nil, false
	}
	if !n.pool.remove(id) {
		// loc and pools are maintained together; disagreement is a bug.
		panic(fmt.Sprintf("betree: location map points to a pool without id %d", id))
	}
	delete(t.loc, id)
	return &n.pool, true
}

// MatchAppend appends the ids of all expressions matching e to dst.
func (t *Tree) MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID {
	t.visit(t.root, e, func(p *Pool) {
		for _, x := range p.Exprs {
			if x.MatchesEvent(e) {
				dst = append(dst, x.ID)
			}
		}
	})
	return dst
}

// CollectPools invokes fn on every non-empty pool that could contain a
// match for e (the compressed matcher's candidate clusters).
func (t *Tree) CollectPools(e *expr.Event, fn func(*Pool)) {
	t.visit(t.root, e, fn)
}

func (t *Tree) visit(n *node, e *expr.Event, fn func(*Pool)) {
	if len(n.pool.Exprs) > 0 {
		fn(&n.pool)
	}
	if len(n.parts) == 0 {
		return
	}
	for _, pair := range e.Pairs() {
		part, ok := n.parts[pair.Attr]
		if !ok {
			continue
		}
		if bn := part.eq[pair.Val]; bn != nil {
			t.visit(bn, e, fn)
		}
		for c := part.root; c != nil; {
			if c.n != nil {
				t.visit(c.n, e, fn)
			}
			mid := midpoint(c.lo, c.hi)
			if pair.Val <= mid {
				c = c.left
			} else {
				c = c.right
			}
		}
	}
}

// CollectPoolsAppend is CollectPools in append style: candidate pools
// for e are appended to dst and the extended slice returned. It exists
// for the hot match path — the visitor form forces a closure allocation
// per call on the caller, this form performs none.
func (t *Tree) CollectPoolsAppend(dst []*Pool, e *expr.Event) []*Pool {
	return t.collect(t.root, e, dst)
}

func (t *Tree) collect(n *node, e *expr.Event, dst []*Pool) []*Pool {
	if len(n.pool.Exprs) > 0 {
		dst = append(dst, &n.pool)
	}
	if len(n.parts) == 0 {
		return dst
	}
	for _, pair := range e.Pairs() {
		part, ok := n.parts[pair.Attr]
		if !ok {
			continue
		}
		if bn := part.eq[pair.Val]; bn != nil {
			dst = t.collect(bn, e, dst)
		}
		for c := part.root; c != nil; {
			if c.n != nil {
				dst = t.collect(c.n, e, dst)
			}
			mid := midpoint(c.lo, c.hi)
			if pair.Val <= mid {
				c = c.left
			} else {
				c = c.right
			}
		}
	}
	return dst
}

// ForEach visits every indexed expression. fn returning false stops the
// walk. Must not run concurrently with Insert or Delete.
func (t *Tree) ForEach(fn func(*expr.Expression) bool) {
	stopped := false
	t.Pools(func(p *Pool) {
		if stopped {
			return
		}
		for _, x := range p.Exprs {
			if !fn(x) {
				stopped = true
				return
			}
		}
	})
}

// Pools invokes fn on every non-empty pool in the tree (compilation
// sweep for the compressed matcher).
func (t *Tree) Pools(fn func(*Pool)) {
	t.pools(t.root, fn)
}

func (t *Tree) pools(n *node, fn func(*Pool)) {
	if len(n.pool.Exprs) > 0 {
		fn(&n.pool)
	}
	for _, part := range n.parts {
		for _, bn := range part.eq {
			t.pools(bn, fn)
		}
		var walk func(*cnode)
		walk = func(c *cnode) {
			if c == nil {
				return
			}
			if c.n != nil {
				t.pools(c.n, fn)
			}
			walk(c.left)
			walk(c.right)
		}
		walk(part.root)
	}
}

// Stats describes the tree's shape.
type Stats struct {
	Exprs   int
	Nodes   int
	Parts   int
	Cnodes  int
	MaxPool int // largest pool observed
	Pools   int // non-empty pools
}

// Stats computes shape statistics by full traversal.
func (t *Tree) Stats() Stats {
	s := Stats{Exprs: len(t.loc), Nodes: t.numNodes, Parts: t.numParts, Cnodes: t.numCnodes}
	t.Pools(func(p *Pool) {
		s.Pools++
		if len(p.Exprs) > s.MaxPool {
			s.MaxPool = len(p.Exprs)
		}
	})
	return s
}

// MemBytes estimates the heap footprint of the tree structure (nodes,
// partitions, cluster nodes, pool slices and the location map); the
// expressions themselves are shared with the caller and excluded.
func (t *Tree) MemBytes() int64 {
	var b int64
	b += int64(t.numNodes) * 64
	b += int64(t.numParts) * 64
	b += int64(t.numCnodes) * 48
	b += int64(len(t.loc)) * 24
	t.Pools(func(p *Pool) { b += int64(cap(p.Exprs)) * 8 })
	return b
}
