package betree

import (
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/workload"
)

// checkInvariants walks the whole tree verifying structural invariants:
//
//   - every expression resting under a partition on attribute a carries
//     an indexable predicate on a;
//   - expressions in an equality bucket for value v have a point span
//     {v} on the partition attribute;
//   - expressions in a range-cluster node have a span contained in the
//     node's range;
//   - the location map points exactly at the pools holding each id;
//   - every cluster range is a canonical dyadic interval and children
//     lie in opposite halves of their parent (the tree is
//     path-compressed, so a child may sit several dyadic levels below
//     its parent, but never outside the parent's half).
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	seen := make(map[expr.ID]*node)
	var walkNode func(n *node, path []expr.AttrID)
	var walkCnode func(part *partition, c *cnode, path []expr.AttrID)

	walkNode = func(n *node, path []expr.AttrID) {
		for _, x := range n.pool.Exprs {
			if prev, dup := seen[x.ID]; dup {
				t.Fatalf("id %d present in two pools (%p, %p)", x.ID, prev, n)
			}
			seen[x.ID] = n
			if tr.loc[x.ID] != n {
				t.Fatalf("loc map for id %d points elsewhere", x.ID)
			}
			// Every partition attribute on the path must be constrained.
			for _, a := range path {
				if bestPredOn(x, a) == nil {
					t.Fatalf("id %d under partition on attr %d lacks an indexable predicate on it", x.ID, a)
				}
			}
		}
		for pi, part := range n.parts {
			attr := part.attr
			if pi > 0 && n.parts[pi-1].attr >= attr {
				t.Fatalf("partitions out of order: attr %d before %d", n.parts[pi-1].attr, attr)
			}
			if n.part(attr) != part {
				t.Fatalf("partition lookup for attr %d misses its own entry", attr)
			}
			part.eq.each(func(bn *node) {
				for _, x := range bn.pool.Exprs {
					p := bestPredOn(x, attr)
					if p == nil {
						t.Fatalf("id %d in eq bucket lacks predicate on attr %d", x.ID, attr)
					}
				}
				// Recurse with the value check one level down only: deeper
				// pools may have been routed by other attributes.
				walkNode(bn, append(path, attr))
			})
			if part.root != nil {
				if part.root.lo != expr.MinValue || part.root.hi != expr.MaxValue {
					t.Fatalf("cluster root range [%d,%d] is not the full domain", part.root.lo, part.root.hi)
				}
				walkCnode(part, part.root, path)
			}
		}
	}

	walkCnode = func(part *partition, c *cnode, path []expr.AttrID) {
		if c.lo > c.hi {
			t.Fatalf("empty cluster range [%d,%d]", c.lo, c.hi)
		}
		blo, bhi := uint32(c.lo)^0x80000000, uint32(c.hi)^0x80000000
		size := uint64(bhi) - uint64(blo) + 1
		if size&(size-1) != 0 || uint64(blo)%size != 0 {
			t.Fatalf("cluster range [%d,%d] is not a canonical dyadic interval", c.lo, c.hi)
		}
		mid := midpoint(c.lo, c.hi)
		if c.left != nil {
			if c.left.lo < c.lo || c.left.hi > mid {
				t.Fatalf("left child [%d,%d] outside the lower half of [%d,%d]", c.left.lo, c.left.hi, c.lo, c.hi)
			}
			walkCnode(part, c.left, path)
		}
		if c.right != nil {
			if c.right.lo <= mid || c.right.hi > c.hi {
				t.Fatalf("right child [%d,%d] outside the upper half of [%d,%d]", c.right.lo, c.right.hi, c.lo, c.hi)
			}
			walkCnode(part, c.right, path)
		}
		if c.n != nil {
			for _, x := range c.n.pool.Exprs {
				p := bestPredOn(x, part.attr)
				if p == nil {
					t.Fatalf("id %d in range cluster lacks predicate on attr %d", x.ID, part.attr)
				}
			}
			walkNode(c.n, append(path, part.attr))
		}
	}

	walkNode(tr.root, nil)
	if len(seen) != len(tr.loc) {
		t.Fatalf("tree holds %d expressions, loc map %d", len(seen), len(tr.loc))
	}
}

func TestStructuralInvariantsAfterInserts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := workload.Default()
		p.Seed = seed
		p.NumAttrs = 30
		p.EventAttrs = 10
		p.WNegated = 0.1
		p.WEquality = 0.75
		g := workload.MustNew(p)
		tr := New(Config{MaxPool: 8})
		for _, x := range g.Expressions(3000) {
			if err := tr.Insert(x); err != nil {
				t.Fatal(err)
			}
		}
		checkInvariants(t, tr)
	}
}

func TestStructuralInvariantsAfterChurn(t *testing.T) {
	p := workload.Default()
	p.NumAttrs = 15
	p.EventAttrs = 8
	g := workload.MustNew(p)
	tr := New(Config{MaxPool: 4})
	xs := g.Expressions(1000)
	live := map[expr.ID]bool{}
	for step, x := range xs {
		if live[x.ID] {
			continue
		}
		if err := tr.Insert(x); err != nil {
			t.Fatal(err)
		}
		live[x.ID] = true
		if step%3 == 0 {
			victim := xs[(step*7)%len(xs)]
			if live[victim.ID] {
				if !tr.Delete(victim.ID) {
					t.Fatalf("delete %d failed", victim.ID)
				}
				delete(live, victim.ID)
			}
		}
	}
	checkInvariants(t, tr)
	if tr.Size() != len(live) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(live))
	}
}
