// Package scan implements the naive sequential matcher: every event is
// interpreted against every indexed expression with per-predicate
// short-circuiting. It is the correctness oracle for the equivalence
// tests and the lower baseline in every experiment.
package scan

import (
	"fmt"

	"github.com/streammatch/apcm/expr"
)

// Matcher is the naive scan matcher. The zero value is not usable; call
// New.
type Matcher struct {
	exprs []*expr.Expression
	pos   map[expr.ID]int // id -> index in exprs
}

// New returns an empty scan matcher.
func New() *Matcher {
	return &Matcher{pos: make(map[expr.ID]int)}
}

// Insert adds x to the matcher.
func (m *Matcher) Insert(x *expr.Expression) error {
	if _, dup := m.pos[x.ID]; dup {
		return fmt.Errorf("scan: duplicate expression id %d", x.ID)
	}
	m.pos[x.ID] = len(m.exprs)
	m.exprs = append(m.exprs, x)
	return nil
}

// Delete removes the expression with the given id via swap-remove.
func (m *Matcher) Delete(id expr.ID) bool {
	i, ok := m.pos[id]
	if !ok {
		return false
	}
	last := len(m.exprs) - 1
	m.exprs[i] = m.exprs[last]
	m.pos[m.exprs[i].ID] = i
	m.exprs = m.exprs[:last]
	delete(m.pos, id)
	return true
}

// MatchAppend appends the ids of all expressions matching e to dst.
func (m *Matcher) MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID {
	for _, x := range m.exprs {
		if x.MatchesEvent(e) {
			dst = append(dst, x.ID)
		}
	}
	return dst
}

// Size returns the number of indexed expressions.
func (m *Matcher) Size() int { return len(m.exprs) }

// ForEach visits every indexed expression.
func (m *Matcher) ForEach(fn func(*expr.Expression) bool) {
	for _, x := range m.exprs {
		if !fn(x) {
			return
		}
	}
}

// MemBytes estimates the heap footprint: slice headers, map entries and
// the expressions' predicate storage.
func (m *Matcher) MemBytes() int64 {
	var b int64
	for _, x := range m.exprs {
		b += exprMemBytes(x)
	}
	b += int64(len(m.exprs)) * 8 // exprs slice
	b += int64(len(m.pos)) * 24  // rough map entry cost
	return b
}

func exprMemBytes(x *expr.Expression) int64 {
	b := int64(16) // header
	for i := range x.Preds {
		b += 32 + int64(len(x.Preds[i].Set))*4
	}
	return b
}
