package scan

import (
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/internal/matchtest"
)

func TestConformance(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New() })
}

func TestSwapRemoveKeepsPositions(t *testing.T) {
	m := New()
	for id := expr.ID(1); id <= 4; id++ {
		if err := m.Insert(expr.MustNew(id, expr.Eq(1, expr.Value(id)))); err != nil {
			t.Fatal(err)
		}
	}
	// Delete from the middle; the swapped-in tail expression must remain
	// findable and matchable.
	if !m.Delete(2) {
		t.Fatal("delete failed")
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 4)))
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("tail expression lost after swap-remove: %v", got)
	}
	if !m.Delete(4) {
		t.Fatal("swapped expression not deletable")
	}
	if m.Size() != 2 {
		t.Fatalf("Size = %d", m.Size())
	}
}

func TestMemBytesGrows(t *testing.T) {
	m := New()
	if m.MemBytes() != 0 {
		t.Fatalf("empty MemBytes = %d", m.MemBytes())
	}
	if err := m.Insert(expr.MustNew(1, expr.Eq(1, 1), expr.Any(2, 1, 2, 3))); err != nil {
		t.Fatal(err)
	}
	if m.MemBytes() <= 0 {
		t.Fatal("MemBytes should grow with inserts")
	}
}
