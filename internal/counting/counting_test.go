package counting

import (
	"testing"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/match"
	"github.com/streammatch/apcm/internal/matchtest"
)

func TestConformance(t *testing.T) {
	matchtest.RunConformance(t, func() match.Matcher { return New() })
}

func TestRebuildAfterHeavyDeletion(t *testing.T) {
	m := New()
	for id := expr.ID(1); id <= 100; id++ {
		if err := m.Insert(expr.MustNew(id, expr.Eq(1, expr.Value(id%10)))); err != nil {
			t.Fatal(err)
		}
	}
	for id := expr.ID(1); id <= 80; id++ {
		if !m.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	if m.Size() != 20 {
		t.Fatalf("Size = %d, want 20", m.Size())
	}
	// The rebuild must preserve matching for survivors.
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 5)))
	want := map[expr.ID]bool{85: true, 95: true}
	if len(got) != len(want) {
		t.Fatalf("after rebuild got %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected match %d", id)
		}
	}
}

func TestEpochWraparound(t *testing.T) {
	m := New()
	if err := m.Insert(expr.MustNew(1, expr.Eq(1, 5))); err != nil {
		t.Fatal(err)
	}
	// Force the epoch to the brink of wrap and match across it.
	m.epoch = ^uint32(0) - 1
	ev := expr.MustEvent(expr.P(1, 5))
	for i := 0; i < 4; i++ {
		if got := m.MatchAppend(nil, ev); len(got) != 1 {
			t.Fatalf("iteration %d (epoch %d): got %v", i, m.epoch, got)
		}
	}
	if m.epoch == 0 {
		t.Fatal("epoch should never rest at 0")
	}
}

func TestZeroTargetExpressions(t *testing.T) {
	m := New()
	// Expression consisting solely of non-indexable predicates.
	if err := m.Insert(expr.MustNew(1, expr.Ne(1, 5), expr.None(2, 3))); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ev   *expr.Event
		want bool
	}{
		{expr.MustEvent(expr.P(1, 4), expr.P(2, 2)), true},
		{expr.MustEvent(expr.P(1, 5), expr.P(2, 2)), false},
		{expr.MustEvent(expr.P(1, 4), expr.P(2, 3)), false},
		{expr.MustEvent(expr.P(1, 4)), false}, // attr 2 missing
	}
	for i, c := range cases {
		got := m.MatchAppend(nil, c.ev)
		if (len(got) == 1) != c.want {
			t.Errorf("case %d: got %v, want match=%v", i, got, c.want)
		}
	}
}

func TestInPredicateCountsOnce(t *testing.T) {
	m := New()
	if err := m.Insert(expr.MustNew(1, expr.Any(1, 2, 3, 4))); err != nil {
		t.Fatal(err)
	}
	got := m.MatchAppend(nil, expr.MustEvent(expr.P(1, 3)))
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestMemBytes(t *testing.T) {
	m := New()
	if err := m.Insert(expr.MustNew(1, expr.Eq(1, 1), expr.Rng(2, 1, 5))); err != nil {
		t.Fatal(err)
	}
	if m.MemBytes() <= 0 {
		t.Fatal("MemBytes should be positive after insert")
	}
}
