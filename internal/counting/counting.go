// Package counting implements the classic counting-based matcher (Yan &
// Garcia-Molina): an inverted index from attribute values to the
// predicates they satisfy, with one counter per expression per event.
// An expression becomes a candidate when its counter reaches its number
// of indexable predicates; candidates are then verified against their
// non-indexable residue (NE, NOT IN).
//
// Equality and membership predicates live in per-attribute hash maps;
// interval predicates live in per-attribute interval trees (itree).
// Counters use the epoch-stamp trick so no per-event clearing is needed.
package counting

import (
	"fmt"

	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/itree"
)

type exprInfo struct {
	x       *expr.Expression
	target  int32 // number of indexable predicates
	residue []*expr.Predicate
	deleted bool
}

type attrIndex struct {
	eq     map[expr.Value][]int32
	ranges *itree.Tree
}

// Matcher is the counting matcher. Not safe for concurrent use.
type Matcher struct {
	infos []exprInfo
	slot  map[expr.ID]int32
	attrs map[expr.AttrID]*attrIndex

	// zeroTarget lists slots whose expressions have no indexable
	// predicates; they are candidates for every event.
	zeroTarget []int32

	counters []int32
	stamps   []uint32
	epoch    uint32

	dead int
}

// New returns an empty counting matcher.
func New() *Matcher {
	return &Matcher{
		slot:  make(map[expr.ID]int32),
		attrs: make(map[expr.AttrID]*attrIndex),
	}
}

// Insert adds x to the index.
func (m *Matcher) Insert(x *expr.Expression) error {
	if _, dup := m.slot[x.ID]; dup {
		return fmt.Errorf("counting: duplicate expression id %d", x.ID)
	}
	s := int32(len(m.infos))
	info := exprInfo{x: x}
	for i := range x.Preds {
		p := &x.Preds[i]
		if !p.Indexable() {
			info.residue = append(info.residue, p)
			continue
		}
		info.target++
		m.registerPredicate(p, s)
	}
	m.infos = append(m.infos, info)
	m.counters = append(m.counters, 0)
	m.stamps = append(m.stamps, 0)
	m.slot[x.ID] = s
	if info.target == 0 {
		m.zeroTarget = append(m.zeroTarget, s)
	}
	return nil
}

func (m *Matcher) registerPredicate(p *expr.Predicate, s int32) {
	ai := m.attrs[p.Attr]
	if ai == nil {
		ai = &attrIndex{eq: make(map[expr.Value][]int32), ranges: itree.New()}
		m.attrs[p.Attr] = ai
	}
	switch p.Op {
	case expr.EQ:
		ai.eq[p.Lo] = append(ai.eq[p.Lo], s)
	case expr.In:
		// One event value hits at most one set element, so registering
		// each element separately still bumps the counter exactly once.
		for _, v := range p.Set {
			ai.eq[v] = append(ai.eq[v], s)
		}
	default:
		lo, hi := p.Span()
		ai.ranges.Insert(itree.Item{Lo: lo, Hi: hi, Payload: uint64(s)})
	}
}

// Delete tombstones the expression; the index is compacted once half the
// slots are dead.
func (m *Matcher) Delete(id expr.ID) bool {
	s, ok := m.slot[id]
	if !ok {
		return false
	}
	m.infos[s].deleted = true
	delete(m.slot, id)
	m.dead++
	if m.dead*2 > len(m.infos) {
		m.rebuild()
	}
	return true
}

// rebuild compacts tombstoned slots by reconstructing every structure
// from the live expressions.
func (m *Matcher) rebuild() {
	live := make([]*expr.Expression, 0, len(m.infos)-m.dead)
	for i := range m.infos {
		if !m.infos[i].deleted {
			live = append(live, m.infos[i].x)
		}
	}
	*m = *New()
	for _, x := range live {
		// Ids were unique before the rebuild, so re-insertion cannot fail.
		if err := m.Insert(x); err != nil {
			panic(fmt.Sprintf("counting: rebuild: %v", err))
		}
	}
}

// nextEpoch advances the counter epoch, clearing stamps on wrap-around.
func (m *Matcher) nextEpoch() {
	m.epoch++
	if m.epoch == 0 {
		for i := range m.stamps {
			m.stamps[i] = 0
		}
		m.epoch = 1
	}
}

// MatchAppend appends the ids of all matching expressions to dst.
func (m *Matcher) MatchAppend(dst []expr.ID, e *expr.Event) []expr.ID {
	m.nextEpoch()
	for _, pair := range e.Pairs() {
		ai := m.attrs[pair.Attr]
		if ai == nil {
			continue
		}
		for _, s := range ai.eq[pair.Val] {
			dst = m.bump(dst, s, e)
		}
		v := pair.Val
		ai.ranges.Stab(v, func(it itree.Item) bool {
			dst = m.bump(dst, int32(it.Payload), e)
			return true
		})
	}
	for _, s := range m.zeroTarget {
		info := &m.infos[s]
		if !info.deleted && m.verifyResidue(info, e) {
			dst = append(dst, info.x.ID)
		}
	}
	return dst
}

// bump increments slot s's counter for the current epoch and, when the
// counter reaches the slot's target, verifies the residue and appends the
// match.
func (m *Matcher) bump(dst []expr.ID, s int32, e *expr.Event) []expr.ID {
	if m.stamps[s] != m.epoch {
		m.stamps[s] = m.epoch
		m.counters[s] = 0
	}
	m.counters[s]++
	info := &m.infos[s]
	if m.counters[s] == info.target && !info.deleted && m.verifyResidue(info, e) {
		dst = append(dst, info.x.ID)
	}
	return dst
}

func (m *Matcher) verifyResidue(info *exprInfo, e *expr.Event) bool {
	for _, p := range info.residue {
		v, ok := e.Lookup(p.Attr)
		if !ok || !p.Matches(v) {
			return false
		}
	}
	return true
}

// Size returns the number of live expressions.
func (m *Matcher) Size() int { return len(m.infos) - m.dead }

// ForEach visits every live expression.
func (m *Matcher) ForEach(fn func(*expr.Expression) bool) {
	for i := range m.infos {
		if !m.infos[i].deleted && !fn(m.infos[i].x) {
			return
		}
	}
}

// MemBytes estimates the heap footprint of the index structures.
func (m *Matcher) MemBytes() int64 {
	var b int64
	b += int64(len(m.infos)) * 64
	b += int64(len(m.counters)+len(m.stamps)) * 4
	b += int64(len(m.slot)) * 24
	for _, ai := range m.attrs {
		for _, slots := range ai.eq {
			b += 16 + int64(len(slots))*4
		}
		b += ai.ranges.MemBytes()
	}
	return b
}
