package apcm_test

import (
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/internal/osr"
)

// Allocation regression gates for the zero-allocation hot path. The
// steady state of Match, MatchBatchInto and the OSR flush/recycle cycle
// must not allocate; a tolerance of 0.5 allocs/run absorbs the rare
// sync.Pool refill after a GC cycle empties the scratch pool mid-run
// (the same tolerance the scheduler's alloc gate uses).
const allocTolerance = 0.5

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race runtime makes sync.Pool drop puts at random; alloc gates only hold on plain builds")
	}
}

func allocEngine(tb testing.TB, seed int64, nexprs int) (*apcm.Engine, []*expr.Event) {
	tb.Helper()
	g := testWorkload(seed)
	// Workers: 1 keeps the engine pool-free so the gates measure the
	// sequential hot path deterministically on any host.
	e := apcm.MustNew(apcm.Options{Workers: 1})
	tb.Cleanup(e.Close)
	for _, x := range g.Expressions(nexprs) {
		if err := e.Subscribe(x); err != nil {
			tb.Fatal(err)
		}
	}
	e.Prepare()
	return e, g.Events(256)
}

func TestMatchSteadyStateZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	e, events := allocEngine(t, 31, 3000)
	dst := make([]expr.ID, 0, 1024)
	for _, ev := range events { // warm scratch pool, caches, adaptive state
		dst = e.MatchAppend(dst[:0], ev)
	}
	i := 0
	avg := testing.AllocsPerRun(400, func() {
		dst = e.MatchAppend(dst[:0], events[i%len(events)])
		i++
	})
	if avg > allocTolerance {
		t.Fatalf("MatchAppend allocates %.2f/op in steady state, want 0", avg)
	}
}

func TestMatchBatchIntoSteadyStateZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	e, events := allocEngine(t, 37, 3000)
	batch := events[:128]
	var r apcm.BatchResult
	for k := 0; k < 8; k++ { // warm: grow r's arenas, memo table, caches
		e.MatchBatchInto(batch, &r)
	}
	avg := testing.AllocsPerRun(100, func() {
		e.MatchBatchInto(batch, &r)
	})
	if avg > allocTolerance {
		t.Fatalf("MatchBatchInto allocates %.2f/op in steady state, want 0", avg)
	}
}

func TestOSRFlushRecycleZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	g := testWorkload(41)
	events := g.Events(64)
	b := osr.NewBuffer(len(events))
	fill := func() {
		for _, ev := range events {
			if batch := b.Add(ev); batch != nil {
				b.Recycle(batch)
			}
		}
	}
	fill() // warm the slab pools
	avg := testing.AllocsPerRun(200, fill)
	if avg > allocTolerance {
		t.Fatalf("OSR fill+flush+recycle allocates %.2f/window, want 0", avg)
	}
}
