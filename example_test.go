package apcm_test

import (
	"fmt"
	"sort"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// The basic loop: subscribe Boolean expressions, match events.
func Example() {
	schema := expr.NewSchema()
	eng, _ := apcm.New(apcm.Options{Workers: 1})
	defer eng.Close()

	sub := expr.MustParse(schema, eng.NewID(),
		"price <= 500 and brand in {3, 7} and rating >= 4")
	_ = eng.Subscribe(sub)

	hit := expr.MustParseEvent(schema, "price=300, brand=7, rating=5")
	miss := expr.MustParseEvent(schema, "price=600, brand=7, rating=5")
	fmt.Println(len(eng.Match(hit)), len(eng.Match(miss)))
	// Output: 1 0
}

// Predicates can be built programmatically instead of parsed.
func ExampleEngine_SubscribePreds() {
	eng, _ := apcm.New(apcm.Options{Workers: 1})
	defer eng.Close()

	id, _ := eng.SubscribePreds(
		expr.Eq(0, 2),         // category == 2
		expr.Rng(1, 100, 200), // 100 <= price <= 200
		expr.None(2, 9),       // condition not in {9}
	)
	ev := expr.MustEvent(expr.P(0, 2), expr.P(1, 150), expr.P(2, 1))
	fmt.Println(eng.Match(ev)[0] == id)
	// Output: true
}

// A DNF subscription matches when any of its conjunctions does, and is
// reported once per event.
func ExampleEngine_SubscribeAny() {
	eng, _ := apcm.New(apcm.Options{Workers: 1})
	defer eng.Close()

	gid, _ := eng.SubscribeAny(
		[]expr.Predicate{expr.Eq(0, 1)},                // laptops ...
		[]expr.Predicate{expr.Eq(0, 2), expr.Ge(1, 9)}, // ... or highly-rated phones
	)
	laptop := expr.MustEvent(expr.P(0, 1), expr.P(1, 3))
	phone := expr.MustEvent(expr.P(0, 2), expr.P(1, 9))
	dull := expr.MustEvent(expr.P(0, 2), expr.P(1, 2))
	fmt.Println(
		eng.Match(laptop)[0] == gid,
		eng.Match(phone)[0] == gid,
		len(eng.Match(dull)),
	)
	// Output: true true 0
}

// The streaming front end buffers a window, re-orders it for index
// locality, and delivers matches through a callback.
func ExampleEngine_NewStream() {
	eng, _ := apcm.New(apcm.Options{Workers: 1})
	defer eng.Close()
	for v := expr.Value(0); v < 3; v++ {
		eng.SubscribePreds(expr.Eq(0, v))
	}

	var got []int
	stream := eng.NewStream(apcm.StreamOptions{Window: 3, MaxDelay: time.Second},
		func(ev *expr.Event, matches []expr.ID) {
			got = append(got, len(matches))
		})
	stream.Publish(expr.MustEvent(expr.P(0, 2)))
	stream.Publish(expr.MustEvent(expr.P(0, 9))) // matches nothing
	stream.Publish(expr.MustEvent(expr.P(0, 0)))
	stream.Close()
	// OSR delivered the window in locality order (0, 2, 9), so the
	// non-matching event comes last.
	fmt.Println(got)
	// Output: [1 1 0]
}

// Every algorithm answers identically; they differ only in speed.
func ExampleParseAlgorithm() {
	ev := expr.MustEvent(expr.P(0, 7))
	var results []int
	for _, name := range []string{"scan", "counting", "kindex", "betree", "pcm", "apcm"} {
		alg, _ := apcm.ParseAlgorithm(name)
		eng, _ := apcm.New(apcm.Options{Algorithm: alg, Workers: 1})
		eng.SubscribePreds(expr.Ge(0, 5))
		eng.SubscribePreds(expr.Lt(0, 3))
		results = append(results, len(eng.Match(ev)))
		eng.Close()
	}
	sort.Ints(results)
	fmt.Println(results)
	// Output: [1 1 1 1 1 1]
}
