package apcm

import (
	"fmt"

	"github.com/streammatch/apcm/expr"
)

// Disjunctive (DNF) subscriptions. A subscription in disjunctive normal
// form matches an event when ANY of its conjunctions does; the engine
// registers one internal expression per conjunction and reports the
// group id exactly once per matching event.

// SubscribeAny indexes a subscription that matches when any of the
// given conjunctions matches. It returns the group id under which
// matches are reported; Unsubscribe with that id removes the whole
// group. Group ids come from the same allocator as NewID, so combine
// SubscribeAny only with NewID/SubscribePreds-style id management
// (explicit caller-chosen ids may collide).
func (e *Engine) SubscribeAny(conjunctions ...[]expr.Predicate) (expr.ID, error) {
	if len(conjunctions) == 0 {
		return 0, fmt.Errorf("apcm: subscription with no conjunctions")
	}
	// Validate every disjunct before touching the index so failure leaves
	// no partial group behind.
	groupID := e.NewID()
	exprs := make([]*expr.Expression, 0, len(conjunctions))
	for i, conj := range conjunctions {
		x, err := expr.New(e.NewID(), conj...)
		if err != nil {
			return 0, fmt.Errorf("conjunction %d: %w", i, err)
		}
		if e.opts.Normalize {
			nx, ok := x.Normalize()
			if !ok {
				// An unsatisfiable disjunct contributes nothing.
				continue
			}
			x = nx
		}
		exprs = append(exprs, x)
	}
	if len(exprs) == 0 {
		return 0, ErrUnsatisfiable
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, ErrClosed
	}
	inserted := make([]expr.ID, 0, len(exprs))
	for _, x := range exprs {
		var err error
		if e.cm != nil {
			err = e.cm.Insert(x)
		} else {
			err = e.sm.Insert(x)
		}
		if err != nil {
			// Roll back the partial group.
			for _, id := range inserted {
				e.deleteLocked(id)
			}
			return 0, err
		}
		inserted = append(inserted, x.ID)
	}
	if e.groups == nil {
		e.groups = make(map[expr.ID][]expr.ID)
		e.alias = make(map[expr.ID]expr.ID)
	}
	e.groups[groupID] = inserted
	for _, id := range inserted {
		e.alias[id] = groupID
	}
	return groupID, nil
}

func (e *Engine) deleteLocked(id expr.ID) bool {
	if e.cm != nil {
		return e.cm.Delete(id)
	}
	return e.sm.Delete(id)
}

// unsubscribeGroupLocked removes a whole DNF group; the caller holds the
// write lock. It reports whether id named a group.
func (e *Engine) unsubscribeGroupLocked(id expr.ID) (bool, bool) {
	members, ok := e.groups[id]
	if !ok {
		return false, false
	}
	all := true
	for _, m := range members {
		if !e.deleteLocked(m) {
			all = false
		}
		delete(e.alias, m)
	}
	delete(e.groups, id)
	return true, all
}

// dedupLinearMax bounds the result sizes de-duplicated by linear scan:
// below it the scan beats allocating a map, and typical per-event match
// lists are far smaller.
const dedupLinearMax = 32

// translate rewrites raw match ids through the DNF alias table,
// de-duplicating group ids that matched through several disjuncts. It
// is called with at least a read lock held and only when aliases exist.
func (e *Engine) translate(ids []expr.ID) []expr.ID {
	if len(ids) <= dedupLinearMax {
		out := ids[:0]
		for _, id := range ids {
			if g, ok := e.alias[id]; ok {
				id = g
			}
			if !containsID(out, id) {
				out = append(out, id)
			}
		}
		return out
	}
	seen := make(map[expr.ID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if g, ok := e.alias[id]; ok {
			id = g
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}

// translateAppend is translate in append style for the batch path: the
// translated, de-duplicated ids are appended to dst (which must not
// alias ids) and the extended slice returned.
func (e *Engine) translateAppend(dst []expr.ID, ids []expr.ID) []expr.ID {
	head := len(dst)
	if len(ids) <= dedupLinearMax {
		for _, id := range ids {
			if g, ok := e.alias[id]; ok {
				id = g
			}
			if !containsID(dst[head:], id) {
				dst = append(dst, id)
			}
		}
		return dst
	}
	seen := make(map[expr.ID]bool, len(ids))
	for _, id := range ids {
		if g, ok := e.alias[id]; ok {
			id = g
		}
		if !seen[id] {
			seen[id] = true
			dst = append(dst, id)
		}
	}
	return dst
}

func containsID(ids []expr.ID, id expr.ID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// hasAliases reports whether any DNF groups are live; callers hold at
// least a read lock.
func (e *Engine) hasAliases() bool { return len(e.alias) > 0 }
