package apcm_test

import (
	"bytes"
	"runtime"
	"sort"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
	"github.com/streammatch/apcm/trace"
	"github.com/streammatch/apcm/workload"
)

// loadTestTrace builds an in-memory expression trace plus a probe event
// set from the default workload generator.
func loadTestTrace(t testing.TB, nsubs, nevents int) ([]byte, []*expr.Event) {
	t.Helper()
	p := workload.Default()
	p.Seed = 17
	g, err := workload.New(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteExpressions(&buf, g.Expressions(nsubs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), g.Events(nevents)
}

func sortedIDs(ids []expr.ID) []expr.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// checkLoadEquivalence loads data into a fresh engine through load and
// verifies count, Len, id-allocator advance and match results against
// an engine filled by LoadSubscriptionsSequential.
func checkLoadEquivalence(t *testing.T, data []byte, events []*expr.Event,
	load func(e *apcm.Engine, data []byte) (int, error)) {
	t.Helper()
	ref := apcm.MustNew(apcm.Options{Workers: 1})
	defer ref.Close()
	want, err := ref.LoadSubscriptionsSequential(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	got, err := load(eng, data)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || eng.Len() != ref.Len() {
		t.Fatalf("loaded %d (Len %d), sequential loaded %d (Len %d)",
			got, eng.Len(), want, ref.Len())
	}
	if eng.NewID() != ref.NewID() {
		t.Fatal("id allocators diverged after load")
	}
	eng.Prepare()
	for i, ev := range events {
		a := sortedIDs(eng.Match(ev))
		b := sortedIDs(ref.Match(ev))
		if len(a) != len(b) {
			t.Fatalf("event %d: %d matches vs sequential %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("event %d: match %d is %d vs sequential %d", i, j, a[j], b[j])
			}
		}
	}
}

// TestLoadSubscriptionsChunked: the chunked slab-decoding restore (the
// single-core path) is observationally identical to the sequential
// loop.
func TestLoadSubscriptionsChunked(t *testing.T) {
	data, events := loadTestTrace(t, 3000, 200)
	checkLoadEquivalence(t, data, events, func(e *apcm.Engine, data []byte) (int, error) {
		return e.LoadSubscriptions(bytes.NewReader(data))
	})
}

// TestLoadSubscriptionsPipelined: the reader/decoder/inserter pipeline
// (the multi-core path, forced here by raising GOMAXPROCS) is
// observationally identical to the sequential loop.
func TestLoadSubscriptionsPipelined(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	data, events := loadTestTrace(t, 3000, 200)
	checkLoadEquivalence(t, data, events, func(e *apcm.Engine, data []byte) (int, error) {
		return e.LoadSubscriptions(bytes.NewReader(data))
	})
}

// loadPartialCases exercises every loader flavour against the two
// partial-failure shapes: a duplicate id mid-trace (insert failure) and
// a truncated tail (read failure). All flavours must keep the prefix,
// report its exact size, and advance the id allocator past it.
func loadPartialCases(t *testing.T, load func(e *apcm.Engine, data []byte) (int, error)) {
	t.Helper()
	xs := []*expr.Expression{
		expr.MustNew(700, expr.Eq(1, 1)),
		expr.MustNew(800, expr.Eq(2, 2)),
		expr.MustNew(700, expr.Eq(3, 3)), // duplicate id: Subscribe fails here
		expr.MustNew(900, expr.Eq(4, 4)),
	}
	var buf bytes.Buffer
	if err := writeExpressionTrace(&buf, xs); err != nil {
		t.Fatal(err)
	}

	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	n, err := load(eng, buf.Bytes())
	if err == nil {
		t.Fatal("duplicate-id trace loaded without error")
	}
	if n != 2 || eng.Len() != 2 {
		t.Fatalf("loaded %d (Len %d) before the duplicate, want 2", n, eng.Len())
	}
	if id := eng.NewID(); id <= 800 {
		t.Fatalf("NewID = %d after loading ids 700, 800, want > 800", id)
	}

	var clean bytes.Buffer
	if err := writeExpressionTrace(&clean, []*expr.Expression{xs[0], xs[1], xs[3]}); err != nil {
		t.Fatal(err)
	}
	trunc := apcm.MustNew(apcm.Options{Workers: 1})
	defer trunc.Close()
	n, err = load(trunc, clean.Bytes()[:clean.Len()-3])
	if err == nil {
		t.Fatal("truncated trace loaded without error")
	}
	if n != 2 || trunc.Len() != 2 {
		t.Fatalf("loaded %d (Len %d) from the truncated trace, want 2", n, trunc.Len())
	}
	if id := trunc.NewID(); id <= 800 {
		t.Fatalf("NewID = %d after a truncated load of ids 700, 800, want > 800", id)
	}
}

func TestLoadSubscriptionsChunkedPartial(t *testing.T) {
	loadPartialCases(t, func(e *apcm.Engine, data []byte) (int, error) {
		return e.LoadSubscriptions(bytes.NewReader(data))
	})
}

func TestLoadSubscriptionsPipelinedPartial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	loadPartialCases(t, func(e *apcm.Engine, data []byte) (int, error) {
		return e.LoadSubscriptions(bytes.NewReader(data))
	})
}

func TestLoadSubscriptionsSequentialPartial(t *testing.T) {
	loadPartialCases(t, func(e *apcm.Engine, data []byte) (int, error) {
		return e.LoadSubscriptionsSequential(bytes.NewReader(data))
	})
}

// TestSubscribeBulk: bulk subscription is Subscribe in a loop with
// batch locking — same results, same stop-at-first-failure contract.
func TestSubscribeBulk(t *testing.T) {
	p := workload.Default()
	p.Seed = 23
	g := workload.MustNew(p)
	xs := g.Expressions(2000)
	events := g.Events(100)

	ref := apcm.MustNew(apcm.Options{Workers: 1})
	defer ref.Close()
	for _, x := range xs {
		if err := ref.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	if n, err := eng.SubscribeBulk(xs); err != nil || n != len(xs) {
		t.Fatalf("SubscribeBulk = %d, %v, want %d, nil", n, err, len(xs))
	}
	if eng.Len() != ref.Len() {
		t.Fatalf("Len %d vs per-call %d", eng.Len(), ref.Len())
	}
	eng.Prepare()
	ref.Prepare()
	for i, ev := range events {
		a, b := sortedIDs(eng.Match(ev)), sortedIDs(ref.Match(ev))
		if len(a) != len(b) {
			t.Fatalf("event %d: %d matches vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("event %d: match %d is %d vs %d", i, j, a[j], b[j])
			}
		}
	}
}

func TestSubscribeBulkPartialFailure(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1})
	defer eng.Close()
	xs := []*expr.Expression{
		expr.MustNew(1, expr.Eq(1, 1)),
		expr.MustNew(2, expr.Eq(2, 2)),
		expr.MustNew(1, expr.Eq(3, 3)), // duplicate
		expr.MustNew(3, expr.Eq(4, 4)),
	}
	n, err := eng.SubscribeBulk(xs)
	if err == nil {
		t.Fatal("duplicate id subscribed without error")
	}
	if n != 2 || eng.Len() != 2 {
		t.Fatalf("SubscribeBulk inserted %d (Len %d), want 2", n, eng.Len())
	}
}

func TestSubscribeBulkNormalize(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1, Normalize: true})
	defer eng.Close()
	xs := []*expr.Expression{
		expr.MustNew(1, expr.Eq(1, 1)),
		expr.MustNew(2, expr.Eq(1, 1), expr.Eq(1, 2)), // unsatisfiable
		expr.MustNew(3, expr.Eq(2, 2)),
	}
	n, err := eng.SubscribeBulk(xs)
	if err != apcm.ErrUnsatisfiable {
		t.Fatalf("err = %v, want ErrUnsatisfiable", err)
	}
	if n != 1 || eng.Len() != 1 {
		t.Fatalf("SubscribeBulk inserted %d (Len %d), want 1", n, eng.Len())
	}
}

// TestSubscribeBulkThenAppendCompiled: bulk inserts into an already
// compiled cluster must be absorbed (batch append or recompile) and
// stay matchable.
func TestSubscribeBulkThenAppendCompiled(t *testing.T) {
	eng := apcm.MustNew(apcm.Options{Workers: 1, MinCompressSize: 8})
	defer eng.Close()
	var xs []*expr.Expression
	for i := expr.ID(1); i <= 64; i++ {
		xs = append(xs, expr.MustNew(i, expr.Eq(1, expr.Value(i%4)), expr.Ge(2, 0)))
	}
	if n, err := eng.SubscribeBulk(xs[:48]); err != nil || n != 48 {
		t.Fatalf("first batch: %d, %v", n, err)
	}
	eng.Prepare() // compile
	if n, err := eng.SubscribeBulk(xs[48:]); err != nil || n != 16 {
		t.Fatalf("second batch: %d, %v", n, err)
	}
	got := sortedIDs(eng.Match(expr.MustEvent(expr.P(1, 1), expr.P(2, 5))))
	var want []expr.ID
	for i := expr.ID(1); i <= 64; i++ {
		if i%4 == 1 {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("matched %d subscriptions after compiled append, want %d: %v", len(got), len(want), got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("match %d = %d, want %d", i, got[i], want[i])
		}
	}
}
