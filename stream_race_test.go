package apcm_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// seqOf extracts the unique sequence number a racing test stamps into
// attribute 2 of every event.
func seqOf(t *testing.T, ev *expr.Event) int {
	t.Helper()
	for _, p := range ev.Pairs() {
		if p.Attr == 2 {
			return int(p.Val)
		}
	}
	t.Fatal("event carries no sequence attribute")
	return -1
}

// TestStreamExactlyOnceUnderFlushRace hammers Publish against manual
// Flush calls and fast deadline timers: every published event must be
// delivered exactly once — a timer firing concurrently with a window
// flush must neither drop nor double-deliver a batch.
func TestStreamExactlyOnceUnderFlushRace(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()

	const (
		publishers   = 4
		perPublisher = 500
		total        = publishers * perPublisher
	)
	var counts [total]atomic.Int32
	var afterClose atomic.Int32
	closedFlag := &atomic.Bool{}
	s := e.NewStream(apcm.StreamOptions{Window: 8, MaxDelay: 200 * time.Microsecond},
		func(ev *expr.Event, _ []expr.ID) {
			if closedFlag.Load() {
				afterClose.Add(1)
			}
			counts[seqOf(t, ev)].Add(1)
		})

	var wg sync.WaitGroup
	var seq atomic.Int32
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				n := seq.Add(1) - 1
				s.Publish(expr.MustEvent(
					expr.P(1, expr.Value(n%10)),
					expr.P(2, expr.Value(n)),
				))
			}
		}()
	}
	// Concurrent manual flushers maximise contention on the window.
	stopFlush := make(chan struct{})
	var fwg sync.WaitGroup
	for f := 0; f < 2; f++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for {
				select {
				case <-stopFlush:
					return
				default:
					s.Flush()
					s.Pending()
				}
			}
		}()
	}
	wg.Wait()
	close(stopFlush)
	fwg.Wait()
	s.Close()
	closedFlag.Store(true)

	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("event %d delivered %d times, want exactly once", i, got)
		}
	}
	// Close waited for every in-flight delivery, so nothing can arrive
	// once the flag is set; give a late delivery a moment to show up.
	time.Sleep(20 * time.Millisecond)
	if n := afterClose.Load(); n != 0 {
		t.Fatalf("%d deliveries after Close returned", n)
	}
}

// TestStreamCloseRace races Close against publishers and deadline
// timers across many short-lived streams: deliveries may be dropped by
// Close but never duplicated, and none may arrive after Close returns.
func TestStreamCloseRace(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()

	for round := 0; round < 30; round++ {
		const total = 256
		var counts [total]atomic.Int32
		closedFlag := &atomic.Bool{}
		var afterClose atomic.Int32
		s := e.NewStream(apcm.StreamOptions{Window: 4, MaxDelay: 100 * time.Microsecond},
			func(ev *expr.Event, _ []expr.ID) {
				if closedFlag.Load() {
					afterClose.Add(1)
				}
				counts[seqOf(t, ev)].Add(1)
			})

		var wg sync.WaitGroup
		var seq atomic.Int32
		for p := 0; p < 2; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := seq.Add(1) - 1
					if n >= total {
						return
					}
					s.Publish(expr.MustEvent(
						expr.P(1, expr.Value(n%10)),
						expr.P(2, expr.Value(n)),
					))
				}
			}()
		}
		// Close mid-stream, racing the publishers and any armed timer.
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		s.Close()
		closedFlag.Store(true)
		wg.Wait()

		for i := range counts {
			if got := counts[i].Load(); got > 1 {
				t.Fatalf("round %d: event %d delivered %d times", round, i, got)
			}
		}
		if n := afterClose.Load(); n != 0 {
			t.Fatalf("round %d: %d deliveries after Close returned", round, n)
		}
		// A second Close must be safe and also wait.
		s.Close()
	}
}

// TestStreamDeadlineFlushStillWorksAfterRace verifies the generation
// logic does not lose deadline flushes: after a full-window flush races
// a firing timer, a subsequent partial window must still flush by its
// own deadline rather than waiting forever.
func TestStreamDeadlineFlushStillWorksAfterRace(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 3, MaxDelay: 5 * time.Millisecond}, c.deliver)
	defer s.Close()

	for round := 0; round < 20; round++ {
		// Fill a window exactly (synchronous flush), then leave one event
		// buffered; it must arrive via the deadline path.
		for i := 0; i < 3; i++ {
			s.Publish(expr.MustEvent(expr.P(1, expr.Value(i))))
		}
		s.Publish(expr.MustEvent(expr.P(1, 9)))
		want := round*4 + 4
		deadline := time.Now().Add(2 * time.Second)
		for c.count() != want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if c.count() != want {
			t.Fatalf("round %d: delivered %d, want %d (deadline flush lost)", round, c.count(), want)
		}
	}
}
