package apcm_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// FuzzLoadSubscriptions feeds arbitrary bytes to Engine.LoadSubscriptions:
// corrupt snapshots must return an error (keeping whatever prefix loaded
// cleanly), never panic, and never corrupt the engine — after any load
// attempt the engine must still subscribe and match correctly.
func FuzzLoadSubscriptions(f *testing.F) {
	// Seed: a valid snapshot produced by SaveSubscriptions.
	seed := apcm.MustNew(apcm.Options{Workers: 1})
	for i := expr.ID(1); i <= 5; i++ {
		if err := seed.Subscribe(expr.MustNew(i, expr.Eq(1, expr.Value(i)))); err != nil {
			f.Fatal(err)
		}
	}
	var valid bytes.Buffer
	if err := seed.SaveSubscriptions(&valid); err != nil {
		f.Fatal(err)
	}
	seed.Close()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("APCMTRC1"))
	f.Add([]byte("APCMTRC1E\x01\x02\x00\x00")) // event trace: wrong kind
	f.Add(valid.Bytes()[:valid.Len()-2])       // truncated final record
	f.Add(append([]byte("APCMTRC1X"),          // absurd declared count
		binary.AppendUvarint(nil, 1<<63)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		e := apcm.MustNew(apcm.Options{Workers: 1})
		defer e.Close()
		n, err := e.LoadSubscriptions(bytes.NewReader(data))
		if n < 0 || n > e.Len() {
			t.Fatalf("loaded %d subscriptions but engine holds %d", n, e.Len())
		}
		if err == nil && n != e.Len() {
			t.Fatalf("clean load of %d left engine with %d", n, e.Len())
		}
		// The engine must remain fully usable regardless of the outcome.
		id, serr := e.SubscribePreds(expr.Eq(7, 42))
		if serr != nil {
			t.Fatalf("subscribe after load: %v", serr)
		}
		got := e.Match(expr.MustEvent(expr.P(7, 42)))
		found := false
		for _, g := range got {
			found = found || g == id
		}
		if !found {
			t.Fatalf("engine lost the post-load subscription (err was %v)", err)
		}
		if !e.Unsubscribe(id) {
			t.Fatal("unsubscribe after load failed")
		}
	})
}
