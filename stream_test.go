package apcm_test

import (
	"sync"
	"testing"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

type collector struct {
	mu   sync.Mutex
	evs  []*expr.Event
	hits []int
}

func (c *collector) deliver(ev *expr.Event, ids []expr.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evs = append(c.evs, ev)
	c.hits = append(c.hits, len(ids))
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

func newStreamEngine(t *testing.T) *apcm.Engine {
	t.Helper()
	e := apcm.MustNew(apcm.Options{Workers: 1})
	for v := expr.Value(0); v < 10; v++ {
		if _, err := e.SubscribePreds(expr.Eq(1, v)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestStreamWindowFlush(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 4, MaxDelay: time.Hour}, c.deliver)
	defer s.Close()

	for i := 0; i < 3; i++ {
		s.Publish(expr.MustEvent(expr.P(1, expr.Value(9-i))))
	}
	if c.count() != 0 {
		t.Fatalf("delivered before window full: %d", c.count())
	}
	if s.Pending() != 3 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Publish(expr.MustEvent(expr.P(1, 0)))
	if c.count() != 4 {
		t.Fatalf("window flush delivered %d of 4", c.count())
	}
	// Locality order: the reordered batch is ascending by value.
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 1; i < len(c.evs); i++ {
		if c.evs[i].Pairs()[0].Val < c.evs[i-1].Pairs()[0].Val {
			t.Fatal("flushed batch not in locality order")
		}
	}
	for _, h := range c.hits {
		if h != 1 {
			t.Fatalf("each event should match exactly one subscription, got %v", c.hits)
		}
	}
}

func TestStreamDeadlineFlush(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 100, MaxDelay: 20 * time.Millisecond}, c.deliver)
	defer s.Close()
	s.Publish(expr.MustEvent(expr.P(1, 5)))
	deadline := time.Now().Add(2 * time.Second)
	for c.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.count() != 1 {
		t.Fatalf("deadline flush did not deliver (got %d)", c.count())
	}
}

func TestStreamManualFlushAndClose(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 100, MaxDelay: time.Hour}, c.deliver)
	s.Publish(expr.MustEvent(expr.P(1, 1)))
	s.Publish(expr.MustEvent(expr.P(1, 2)))
	s.Flush()
	if c.count() != 2 {
		t.Fatalf("manual flush delivered %d of 2", c.count())
	}
	s.Publish(expr.MustEvent(expr.P(1, 3)))
	s.Close() // flushes the tail
	if c.count() != 3 {
		t.Fatalf("close flush delivered %d of 3", c.count())
	}
	s.Publish(expr.MustEvent(expr.P(1, 4))) // dropped
	s.Flush()
	s.Close()
	if c.count() != 3 {
		t.Fatalf("publish after close delivered: %d", c.count())
	}
}

func TestStreamUnbuffered(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 0}, c.deliver)
	defer s.Close()
	s.Publish(expr.MustEvent(expr.P(1, 5)))
	if c.count() != 1 {
		t.Fatal("unbuffered stream should deliver immediately")
	}
}

func TestStreamDuplicateEventsDelivered(t *testing.T) {
	// Duplicate events inside a window are matched once but every copy
	// must still be delivered with the full result.
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 6, MaxDelay: time.Hour}, c.deliver)
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Publish(expr.MustEvent(expr.P(1, 5)))
		s.Publish(expr.MustEvent(expr.P(1, 7)))
	}
	if c.count() != 6 {
		t.Fatalf("delivered %d of 6", c.count())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, h := range c.hits {
		if h != 1 {
			t.Fatalf("delivery %d has %d matches, want 1 (%s)", i, h, c.evs[i])
		}
	}
}

func TestStreamConcurrentPublishers(t *testing.T) {
	e := newStreamEngine(t)
	defer e.Close()
	var c collector
	s := e.NewStream(apcm.StreamOptions{Window: 8, MaxDelay: 5 * time.Millisecond}, c.deliver)
	var wg sync.WaitGroup
	const perPublisher = 200
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				s.Publish(expr.MustEvent(expr.P(1, expr.Value(i%10))))
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	if c.count() != 4*perPublisher {
		t.Fatalf("delivered %d of %d", c.count(), 4*perPublisher)
	}
}
