package apcm_test

import (
	"sync"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// TestAlgorithmsAgreeUnderChurn is the differential churn test: all six
// algorithms must stay equivalent to each other and to the brute-force
// oracle on a stable subscription set while background goroutines
// subscribe and unsubscribe a disjoint churn set concurrently with
// Match and MatchBatch. Run under -race this also hammers the engine's
// RWMutex discipline (Subscribe/Unsubscribe write vs. Match read).
func TestAlgorithmsAgreeUnderChurn(t *testing.T) {
	g := testWorkload(7)
	const (
		stableCount = 300
		churnCount  = 100
	)
	xs := g.Expressions(stableCount + churnCount)
	stable, churny := xs[:stableCount], xs[stableCount:]
	var maxStable expr.ID
	for _, x := range stable {
		if x.ID > maxStable {
			maxStable = x.ID
		}
	}
	for _, x := range churny {
		if x.ID <= maxStable {
			t.Fatalf("churn id %d not above stable range %d", x.ID, maxStable)
		}
	}

	type eng struct {
		name string
		e    *apcm.Engine
	}
	var engines []eng
	for _, alg := range apcm.Algorithms() {
		e := apcm.MustNew(apcm.Options{Algorithm: alg, Workers: 2})
		defer e.Close()
		for _, x := range stable {
			if err := e.Subscribe(x); err != nil {
				t.Fatal(err)
			}
		}
		engines = append(engines, eng{alg.String(), e})
	}

	// Background churners: each engine gets a goroutine cycling the
	// churn set in and out. Cycles finish completely before checking
	// stop, so every engine ends holding exactly the stable set.
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	for _, en := range engines {
		churnWG.Add(1)
		go func(e *apcm.Engine) {
			defer churnWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, x := range churny {
					if err := e.Subscribe(x); err != nil {
						t.Errorf("churn subscribe %d: %v", x.ID, err)
						return
					}
				}
				for _, x := range churny {
					if !e.Unsubscribe(x.ID) {
						t.Errorf("churn unsubscribe %d failed", x.ID)
						return
					}
				}
			}
		}(en.e)
	}

	// stableOnly filters out churn-set ids: those may legitimately differ
	// between engines depending on where each churner happens to be.
	stableOnly := func(ids []expr.ID) []expr.ID {
		out := ids[:0]
		for _, id := range ids {
			if id <= maxStable {
				out = append(out, id)
			}
		}
		return sorted(out)
	}

	events := g.Events(120)
	for i, ev := range events {
		var want []expr.ID
		for _, x := range stable {
			if x.MatchesEvent(ev) {
				want = append(want, x.ID)
			}
		}
		want = sorted(want)
		for _, en := range engines {
			var got []expr.ID
			if i%8 == 7 {
				// Exercise the batch path too: a window ending at this event.
				lo := i - 7
				batch := en.e.MatchBatch(events[lo : i+1])
				got = append(got, batch[7]...)
			} else {
				got = en.e.Match(ev)
			}
			got = stableOnly(got)
			if len(got) != len(want) {
				t.Fatalf("event %d: %s returned %d stable matches, oracle %d", i, en.name, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("event %d: %s diverged from oracle on stable set", i, en.name)
				}
			}
		}
	}

	close(stop)
	churnWG.Wait()

	// Churners finished on a cycle boundary: every engine must now hold
	// exactly the stable set and agree with the oracle without filtering.
	for _, en := range engines {
		if en.e.Len() != stableCount {
			t.Fatalf("%s: Len = %d after churn, want %d", en.name, en.e.Len(), stableCount)
		}
	}
	for i, ev := range events[:30] {
		var want []expr.ID
		for _, x := range stable {
			if x.MatchesEvent(ev) {
				want = append(want, x.ID)
			}
		}
		want = sorted(want)
		for _, en := range engines {
			got := sorted(en.e.Match(ev))
			if len(got) != len(want) {
				t.Fatalf("post-churn event %d: %s returned %d matches, oracle %d", i, en.name, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("post-churn event %d: %s diverged from oracle", i, en.name)
				}
			}
		}
	}
}
