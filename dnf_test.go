package apcm_test

import (
	"bytes"
	"testing"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

func TestSubscribeAnyMatchesAnyDisjunct(t *testing.T) {
	for _, alg := range apcm.Algorithms() {
		e := apcm.MustNew(apcm.Options{Algorithm: alg, Workers: 1})
		gid, err := e.SubscribeAny(
			[]expr.Predicate{expr.Eq(1, 5)},
			[]expr.Predicate{expr.Ge(2, 100), expr.Lt(3, 10)},
		)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		cases := []struct {
			ev   *expr.Event
			want bool
		}{
			{expr.MustEvent(expr.P(1, 5)), true},                 // first disjunct
			{expr.MustEvent(expr.P(2, 150), expr.P(3, 5)), true}, // second disjunct
			{expr.MustEvent(expr.P(1, 4)), false},
			{expr.MustEvent(expr.P(2, 150), expr.P(3, 15)), false}, // second fails
		}
		for i, c := range cases {
			got := e.Match(c.ev)
			if c.want && (len(got) != 1 || got[0] != gid) {
				t.Fatalf("%v case %d: got %v, want [%d]", alg, i, got, gid)
			}
			if !c.want && len(got) != 0 {
				t.Fatalf("%v case %d: got %v, want none", alg, i, got)
			}
		}
		e.Close()
	}
}

func TestSubscribeAnyDeduplicates(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	// Both disjuncts match the same event: the group must be reported once.
	gid, err := e.SubscribeAny(
		[]expr.Predicate{expr.Ge(1, 0)},
		[]expr.Predicate{expr.Le(1, 100)},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Match(expr.MustEvent(expr.P(1, 50)))
	if len(got) != 1 || got[0] != gid {
		t.Fatalf("got %v, want exactly [%d]", got, gid)
	}
	// Batch path must deduplicate too.
	batch := e.MatchBatch([]*expr.Event{expr.MustEvent(expr.P(1, 50))})
	if len(batch[0]) != 1 || batch[0][0] != gid {
		t.Fatalf("batch got %v", batch[0])
	}
}

func TestSubscribeAnyMixesWithPlainSubscriptions(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	plain, err := e.SubscribePreds(expr.Eq(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	gid, err := e.SubscribeAny(
		[]expr.Predicate{expr.Eq(1, 5)},
		[]expr.Predicate{expr.Eq(1, 6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Match(expr.MustEvent(expr.P(1, 5)))
	if len(got) != 2 {
		t.Fatalf("got %v, want plain and group", got)
	}
	seen := map[expr.ID]bool{got[0]: true, got[1]: true}
	if !seen[plain] || !seen[gid] {
		t.Fatalf("got %v, want {%d,%d}", got, plain, gid)
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (group counts once)", e.Len())
	}
}

func TestUnsubscribeGroup(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	gid, err := e.SubscribeAny(
		[]expr.Predicate{expr.Eq(1, 5)},
		[]expr.Predicate{expr.Eq(1, 6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Unsubscribe(gid) {
		t.Fatal("group unsubscribe failed")
	}
	if got := e.Match(expr.MustEvent(expr.P(1, 5))); len(got) != 0 {
		t.Fatalf("match after group unsubscribe: %v", got)
	}
	if got := e.Match(expr.MustEvent(expr.P(1, 6))); len(got) != 0 {
		t.Fatalf("match after group unsubscribe: %v", got)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d", e.Len())
	}
	if e.Unsubscribe(gid) {
		t.Fatal("double group unsubscribe succeeded")
	}
}

func TestSubscribeAnyValidation(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	if _, err := e.SubscribeAny(); err == nil {
		t.Fatal("empty disjunction accepted")
	}
	if _, err := e.SubscribeAny([]expr.Predicate{}); err == nil {
		t.Fatal("empty conjunction accepted")
	}
	bad := expr.Predicate{Attr: 1, Op: expr.Between, Lo: 9, Hi: 1}
	if _, err := e.SubscribeAny([]expr.Predicate{expr.Eq(1, 1)}, []expr.Predicate{bad}); err == nil {
		t.Fatal("invalid disjunct accepted")
	}
	// The failed call must leave nothing behind.
	if e.Len() != 0 {
		t.Fatalf("Len = %d after failed SubscribeAny", e.Len())
	}
	if got := e.Match(expr.MustEvent(expr.P(1, 1))); len(got) != 0 {
		t.Fatalf("partial group leaked: %v", got)
	}
}

func TestSubscribeAnyUnderParallelMatching(t *testing.T) {
	// Group dedup must hold on the intra-event parallel path too.
	g := testWorkload(21)
	e := apcm.MustNew(apcm.Options{Workers: 4, IntraEventParallelism: 1})
	defer e.Close()
	for _, x := range g.Expressions(1500) {
		// High-range ids keep clear of the engine's NewID allocator,
		// which SubscribeAny draws from below.
		seed := &expr.Expression{ID: x.ID + 1<<40, Preds: x.Preds}
		if err := e.Subscribe(seed); err != nil {
			t.Fatal(err)
		}
	}
	gid, err := e.SubscribeAny(
		[]expr.Predicate{expr.Ge(1, 0)},
		[]expr.Predicate{expr.Le(1, 100)},
		[]expr.Predicate{expr.Ne(1, 50)},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range g.Events(100) {
		got := e.Match(ev)
		n := 0
		for _, id := range got {
			if id == gid {
				n++
			}
		}
		if _, hasAttr1 := ev.Lookup(1); hasAttr1 && n != 1 {
			t.Fatalf("group reported %d times for %s", n, ev)
		}
	}
}

func TestLoadSubscriptionsPartialFailure(t *testing.T) {
	// A duplicate id mid-trace stops the load; the error reports how far
	// it got and earlier subscriptions remain live.
	xs := []*expr.Expression{
		expr.MustNew(1, expr.Eq(1, 1)),
		expr.MustNew(2, expr.Eq(1, 2)),
		expr.MustNew(1, expr.Eq(1, 3)), // duplicate id
	}
	var buf bytes.Buffer
	if err := writeExpressionTrace(&buf, xs); err != nil {
		t.Fatal(err)
	}
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	n, err := e.LoadSubscriptions(&buf)
	if err == nil {
		t.Fatal("duplicate id in trace should fail the load")
	}
	if n != 2 {
		t.Fatalf("loaded %d before failure, want 2", n)
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d after partial load", e.Len())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := testWorkload(11)
	xs := g.Expressions(500)
	events := g.Events(100)
	src := apcm.MustNew(apcm.Options{Workers: 1})
	defer src.Close()
	for _, x := range xs {
		if err := src.Subscribe(x); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.SaveSubscriptions(&buf); err != nil {
		t.Fatal(err)
	}

	for _, alg := range []apcm.Algorithm{apcm.APCM, apcm.BETree} {
		dst := apcm.MustNew(apcm.Options{Algorithm: alg, Workers: 1})
		n, err := dst.LoadSubscriptions(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if n != len(xs) || dst.Len() != len(xs) {
			t.Fatalf("%v: loaded %d, Len %d, want %d", alg, n, dst.Len(), len(xs))
		}
		for _, ev := range events {
			a := sorted(src.Match(ev))
			b := sorted(dst.Match(ev))
			if len(a) != len(b) {
				t.Fatalf("%v: snapshot changed matching: %d vs %d", alg, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v: snapshot changed matching", alg)
				}
			}
		}
		// NewID must not collide with restored ids.
		if id := dst.NewID(); id <= 500 {
			t.Fatalf("%v: NewID after load = %d, may collide", alg, id)
		}
		dst.Close()
	}
}

func TestSnapshotRefusesGroups(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	if _, err := e.SubscribeAny([]expr.Predicate{expr.Eq(1, 1)}, []expr.Predicate{expr.Eq(1, 2)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveSubscriptions(&buf); err == nil {
		t.Fatal("snapshot of DNF engine should be refused")
	}
}

func TestLoadRejectsEventTrace(t *testing.T) {
	var buf bytes.Buffer
	g := testWorkload(12)
	evs := g.Events(3)
	if err := writeEventTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	e := apcm.MustNew(apcm.Options{Workers: 1})
	defer e.Close()
	if _, err := e.LoadSubscriptions(&buf); err == nil {
		t.Fatal("event trace accepted as subscriptions")
	}
}

func TestSaveAfterClose(t *testing.T) {
	e := apcm.MustNew(apcm.Options{Workers: 1})
	e.Close()
	var buf bytes.Buffer
	if err := e.SaveSubscriptions(&buf); err != apcm.ErrClosed {
		t.Fatalf("SaveSubscriptions after close = %v", err)
	}
}
