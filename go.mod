module github.com/streammatch/apcm

go 1.22
