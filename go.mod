module github.com/streammatch/apcm

go 1.22

// Pinned to the exact x/tools revision vendored by the Go 1.24 toolchain
// (src/cmd/vendor), from which vendor/golang.org/x/tools is populated, so
// cmd/apcm-lint builds offline and reproducibly (no proxy access needed).
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
