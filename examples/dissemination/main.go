// Selective information dissemination over the network broker — the
// paper's canonical pub/sub application, end to end.
//
// A broker fronts the matching engine on loopback TCP. Subscriber
// clients register interest profiles (news topics, regions, urgency
// thresholds); a publisher pushes a stream of news items; the broker
// matches each item against every profile and delivers it only to the
// interested subscribers.
//
//	go run ./examples/dissemination
package main

import (
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/broker"
	"github.com/streammatch/apcm/expr"
)

// News item attributes.
const (
	attrTopic   = iota // 0..49 (politics, sports, markets, ...)
	attrRegion         // 0..29
	attrUrgency        // 0..9
	attrSource         // 0..99
)

func main() {
	eng, err := apcm.New(apcm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := broker.NewServer(eng)
	srv.Logf = func(string, ...any) {}
	go srv.Serve(ln) //apcm:detached Serve returns on the deferred srv.Close()
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("broker listening on %s\n\n", addr)

	// Three subscribers with different interest profiles.
	profiles := []struct {
		who  string
		expr string
		prof *expr.Expression
	}{
		{who: "markets desk", prof: expr.MustNew(1,
			expr.Eq(attrTopic, 7),     // markets
			expr.Ge(attrUrgency, 5))}, // important only
		{who: "eu sports fan", prof: expr.MustNew(1,
			expr.Eq(attrTopic, 3), // sports
			expr.Any(attrRegion, 10, 11, 12))},
		{who: "crisis monitor", prof: expr.MustNew(1,
			expr.Ge(attrUrgency, 8),
			expr.None(attrSource, 66))}, // distrusts source 66
	}
	type subscriber struct {
		who      string
		client   *broker.Client
		received atomic.Int64
	}
	subs := make([]*subscriber, len(profiles))
	for i, p := range profiles {
		c, err := broker.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		s := &subscriber{who: p.who, client: c}
		subs[i] = s
		if err := c.Subscribe(p.prof, func(ev *expr.Event) {
			s.received.Add(1)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("subscriber %-14s registered: %s\n", p.who, p.prof)
	}

	// The publisher pushes a burst of news items.
	pub, err := broker.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()

	items := []struct {
		desc  string
		event *expr.Event
	}{
		{"urgent market crash", expr.MustEvent(
			expr.P(attrTopic, 7), expr.P(attrRegion, 10), expr.P(attrUrgency, 9), expr.P(attrSource, 12))},
		{"minor market note", expr.MustEvent(
			expr.P(attrTopic, 7), expr.P(attrRegion, 2), expr.P(attrUrgency, 2), expr.P(attrSource, 12))},
		{"eu football final", expr.MustEvent(
			expr.P(attrTopic, 3), expr.P(attrRegion, 11), expr.P(attrUrgency, 4), expr.P(attrSource, 30))},
		{"us baseball recap", expr.MustEvent(
			expr.P(attrTopic, 3), expr.P(attrRegion, 1), expr.P(attrUrgency, 3), expr.P(attrSource, 30))},
		{"urgent rumour from source 66", expr.MustEvent(
			expr.P(attrTopic, 1), expr.P(attrRegion, 5), expr.P(attrUrgency, 9), expr.P(attrSource, 66))},
	}
	fmt.Println()
	for _, item := range items {
		if err := pub.Publish(item.event); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published: %s\n", item.desc)
	}

	// Wait for deliveries to drain (publish is fire-and-forget). The
	// expected count: the crash reaches two profiles, the final one, and
	// nothing else gets through.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, delivered := srv.Stats(); delivered >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println()
	for _, s := range subs {
		fmt.Printf("subscriber %-14s received %d item(s)\n", s.who, s.received.Load())
	}
	published, delivered := srv.Stats()
	fmt.Printf("\nbroker: %d published, %d delivered (selective: %.0f%% of the firehose filtered out)\n",
		published, delivered, 100*(1-float64(delivered)/float64(int64(len(subs))*published)))
}
