// Quickstart: subscribe a handful of Boolean expressions and match
// events against them — the five-minute tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

func main() {
	// A schema maps readable attribute names to dense ids. It is purely a
	// front-end convenience: the engine works on ids.
	schema := expr.NewSchema()

	// The default engine is A-PCM: adaptive parallel compressed matching.
	eng, err := apcm.New(apcm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Subscriptions are conjunctions of predicates. The text syntax
	// supports =, !=, <, <=, >, >=, between, in, not in.
	subs := map[string]string{
		"bargain laptops":     "category = 1 and price <= 800 and rating >= 4",
		"premium phones":      "category = 2 and price between 900 2000 and brand in {1, 3}",
		"anything but refurb": "category = 2 and condition != 9",
	}
	names := map[expr.ID]string{}
	for name, text := range subs {
		x, err := expr.Parse(schema, eng.NewID(), text)
		if err != nil {
			log.Fatalf("parsing %q: %v", text, err)
		}
		if err := eng.Subscribe(x); err != nil {
			log.Fatal(err)
		}
		names[x.ID] = name
		fmt.Printf("subscribed %-22s %s\n", name+":", x.Format(schema))
	}

	// Events assign values to attributes. A subscription matches only if
	// every one of its predicates is satisfied by the event.
	events := []string{
		"category=1, price=650, rating=5, brand=2, condition=1",
		"category=2, price=1100, rating=4, brand=3, condition=1",
		"category=2, price=1100, rating=4, brand=3, condition=9",
		"category=1, price=999, rating=5, brand=1, condition=1",
	}
	fmt.Println()
	for _, text := range events {
		ev, err := expr.ParseEvent(schema, text)
		if err != nil {
			log.Fatal(err)
		}
		matches := eng.Match(ev)
		fmt.Printf("event  %s\n", ev.Format(schema))
		if len(matches) == 0 {
			fmt.Println("  -> no subscriptions matched")
			continue
		}
		for _, id := range matches {
			fmt.Printf("  -> matched %q\n", names[id])
		}
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %s, %d subscriptions, %d workers\n",
		st.Algorithm, st.Subscriptions, st.Workers)
}
