// Computational finance: high-frequency alerting over a tick stream —
// one of the paper's real-time data-analysis applications.
//
// Trading strategies register alert conditions over market ticks
// (symbol, price bucket, volume, percentage move, venue). Ticks arrive
// out of order across thousands of symbols; the engine's streaming
// front end applies online stream re-ordering (OSR) inside a bounded
// latency window before matching, improving index locality.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// Tick attributes. Prices are fixed-point cents; moves are basis points
// offset by 10000 so the domain stays non-negative.
const (
	attrSymbol = iota // 0..1999
	attrPrice         // cents, 0..1_000_00
	attrVolume        // shares per tick, 0..100000
	attrMoveBp        // 10000 = flat, < it = down, > it = up
	attrVenue         // 0..7
)

func strategies(n int, rng *rand.Rand) []*expr.Expression {
	out := make([]*expr.Expression, 0, n)
	id := expr.ID(1)
	for len(out) < n {
		sym := expr.Value(rng.Intn(2000))
		switch rng.Intn(4) {
		case 0: // breakout: symbol trades above a price with volume
			out = append(out, expr.MustNew(id,
				expr.Eq(attrSymbol, sym),
				expr.Ge(attrPrice, expr.Value(5000+rng.Intn(90000))),
				expr.Ge(attrVolume, expr.Value(1000+rng.Intn(20000)))))
		case 1: // crash alert: sharp down-move anywhere in a sector basket
			basket := make([]expr.Value, 5)
			for i := range basket {
				basket[i] = expr.Value(rng.Intn(2000))
			}
			out = append(out, expr.MustNew(id,
				expr.Any(attrSymbol, basket...),
				expr.Le(attrMoveBp, expr.Value(10000-100-rng.Intn(400)))))
		case 2: // venue-specific liquidity: big prints off-exchange
			out = append(out, expr.MustNew(id,
				expr.Eq(attrSymbol, sym),
				expr.Ge(attrVolume, expr.Value(20000+rng.Intn(50000))),
				expr.None(attrVenue, 0, 1)))
		default: // range watch: symbol inside a price band
			lo := expr.Value(1000 + rng.Intn(80000))
			out = append(out, expr.MustNew(id,
				expr.Eq(attrSymbol, sym),
				expr.Rng(attrPrice, lo, lo+expr.Value(rng.Intn(3000)))))
		}
		id++
	}
	return out
}

func tick(rng *rand.Rand) *expr.Event {
	return expr.MustEvent(
		expr.P(attrSymbol, expr.Value(rng.Intn(2000))),
		expr.P(attrPrice, expr.Value(rng.Intn(100000))),
		expr.P(attrVolume, expr.Value(rng.Intn(100000))),
		expr.P(attrMoveBp, expr.Value(9000+rng.Intn(2000))),
		expr.P(attrVenue, expr.Value(rng.Intn(8))),
	)
}

func main() {
	const nStrategies = 40000
	const nTicks = 20000
	rng := rand.New(rand.NewSource(7))

	fmt.Printf("registering %d alert strategies...\n", nStrategies)
	eng, err := apcm.New(apcm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, s := range strategies(nStrategies, rng) {
		if err := eng.Subscribe(s); err != nil {
			log.Fatal(err)
		}
	}
	eng.Prepare()

	var alerts atomic.Int64
	var maxAlertsPerTick atomic.Int64
	stream := eng.NewStream(apcm.StreamOptions{
		Window:   256,
		MaxDelay: 5 * time.Millisecond,
	}, func(_ *expr.Event, matches []expr.ID) {
		n := int64(len(matches))
		alerts.Add(n)
		for {
			cur := maxAlertsPerTick.Load()
			if n <= cur || maxAlertsPerTick.CompareAndSwap(cur, n) {
				break
			}
		}
	})

	fmt.Printf("streaming %d ticks through a %d-tick OSR window...\n", nTicks, 256)
	start := time.Now()
	for i := 0; i < nTicks; i++ {
		stream.Publish(tick(rng))
	}
	stream.Close()
	el := time.Since(start)

	fmt.Printf("\nprocessed %d ticks in %s (%.0f ticks/s)\n",
		nTicks, el.Round(time.Millisecond), float64(nTicks)/el.Seconds())
	fmt.Printf("fired %d alerts (max %d strategies on one tick)\n",
		alerts.Load(), maxAlertsPerTick.Load())
	st := eng.Stats()
	fmt.Printf("engine: %s, %d compiled clusters, %d serving compressed, %.1f preds/entry\n",
		st.Algorithm, st.CompiledClusters, st.CompressedServing, st.CompressionRatio)
}
