// Computational advertising — the paper's first motivating application.
//
// Advertisers register targeting rules (campaigns) as Boolean
// expressions over impression attributes: site category, user
// demographics, geography, device, hour of day. Each incoming ad
// request (impression) must be matched against the whole campaign
// database within a tight budget. This example builds a synthetic
// campaign database, streams impressions through the adaptive
// compressed matcher, and contrasts its rate with the naive scanner on
// the same load.
//
//	go run ./examples/advertising
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// Impression attribute ids.
const (
	attrSiteCategory = iota // 0..19
	attrUserAge             // 13..90
	attrUserGender          // 0/1/2
	attrGeo                 // 0..199 (region code)
	attrDevice              // 0 desktop, 1 phone, 2 tablet
	attrHour                // 0..23
	attrOSFamily            // 0..4
	attrLanguage            // 0..9
)

// campaign builds one targeting rule. Campaigns mirror real targeting:
// a handful of equality/membership constraints plus an age band.
func campaign(rng *rand.Rand, id expr.ID) *expr.Expression {
	preds := []expr.Predicate{
		expr.Eq(attrSiteCategory, expr.Value(rng.Intn(20))),
		expr.Rng(attrUserAge, expr.Value(18+rng.Intn(30)), expr.Value(48+rng.Intn(40))),
	}
	if rng.Intn(2) == 0 {
		preds = append(preds, expr.Eq(attrUserGender, expr.Value(rng.Intn(3))))
	}
	if rng.Intn(3) > 0 {
		regions := make([]expr.Value, 3+rng.Intn(5))
		for i := range regions {
			regions[i] = expr.Value(rng.Intn(200))
		}
		preds = append(preds, expr.Any(attrGeo, regions...))
	}
	if rng.Intn(2) == 0 {
		preds = append(preds, expr.Any(attrDevice, expr.Value(rng.Intn(3))))
	}
	if rng.Intn(4) == 0 { // daypart targeting
		start := rng.Intn(18)
		preds = append(preds, expr.Rng(attrHour, expr.Value(start), expr.Value(start+6)))
	}
	if rng.Intn(5) == 0 { // language exclusion
		preds = append(preds, expr.None(attrLanguage, expr.Value(rng.Intn(10))))
	}
	x, err := expr.New(id, preds...)
	if err != nil {
		log.Fatal(err)
	}
	return x
}

func impression(rng *rand.Rand) *expr.Event {
	ev, err := expr.NewEvent(
		expr.P(attrSiteCategory, expr.Value(rng.Intn(20))),
		expr.P(attrUserAge, expr.Value(13+rng.Intn(77))),
		expr.P(attrUserGender, expr.Value(rng.Intn(3))),
		expr.P(attrGeo, expr.Value(rng.Intn(200))),
		expr.P(attrDevice, expr.Value(rng.Intn(3))),
		expr.P(attrHour, expr.Value(rng.Intn(24))),
		expr.P(attrOSFamily, expr.Value(rng.Intn(5))),
		expr.P(attrLanguage, expr.Value(rng.Intn(10))),
	)
	if err != nil {
		log.Fatal(err)
	}
	return ev
}

func run(alg apcm.Algorithm, campaigns []*expr.Expression, imps []*expr.Event) (float64, int) {
	eng, err := apcm.New(apcm.Options{Algorithm: alg})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, c := range campaigns {
		if err := eng.Subscribe(c); err != nil {
			log.Fatal(err)
		}
	}
	eng.Prepare()
	eligible := 0
	start := time.Now()
	for _, imp := range imps {
		eligible += len(eng.Match(imp))
	}
	rate := float64(len(imps)) / time.Since(start).Seconds()
	return rate, eligible
}

func main() {
	const nCampaigns = 50000
	const nImpressions = 3000
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("building %d ad campaigns...\n", nCampaigns)
	campaigns := make([]*expr.Expression, nCampaigns)
	for i := range campaigns {
		campaigns[i] = campaign(rng, expr.ID(i+1))
	}
	imps := make([]*expr.Event, nImpressions)
	for i := range imps {
		imps[i] = impression(rng)
	}

	fmt.Printf("matching %d impressions against the campaign database:\n\n", nImpressions)
	for _, alg := range []apcm.Algorithm{apcm.Scan, apcm.BETree, apcm.APCM} {
		rate, eligible := run(alg, campaigns, imps)
		fmt.Printf("  %-8s %10.0f impressions/s   (%.1f eligible campaigns per impression)\n",
			alg, rate, float64(eligible)/float64(nImpressions))
	}

	// Campaign churn: advertisers pause and resume campaigns constantly.
	eng, err := apcm.New(apcm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, c := range campaigns {
		if err := eng.Subscribe(c); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	const churn = 5000
	for i := 0; i < churn; i++ {
		c := campaigns[rng.Intn(len(campaigns))]
		if eng.Unsubscribe(c.ID) {
			if err := eng.Subscribe(c); err != nil {
				log.Fatal(err)
			}
		}
		if i%50 == 0 {
			eng.Match(imps[rng.Intn(len(imps))])
		}
	}
	fmt.Printf("\ncampaign churn: %d pause/resume cycles in %s with matching interleaved\n",
		churn, time.Since(start).Round(time.Millisecond))
	st := eng.Stats()
	fmt.Printf("engine: %s, %d campaigns, compression %.1f preds/entry, %d KiB\n",
		st.Algorithm, st.Subscriptions, st.CompressionRatio, st.MemBytes/1024)
}
