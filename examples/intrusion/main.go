// Intrusion detection: signature matching over network flow metadata —
// one of the paper's real-time data-analysis applications.
//
// Detection rules are Boolean expressions over flow features (protocol,
// ports, subnet buckets, packet size, TCP flags, payload class). Every
// observed flow record must be checked against the full rule set at
// line rate; negated predicates ("any port except well-known") are
// common, exercising the non-indexable residue path.
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/streammatch/apcm"
	"github.com/streammatch/apcm/expr"
)

// Flow record attributes.
const (
	attrProto    = iota // 0 tcp, 1 udp, 2 icmp
	attrSrcNet          // source subnet bucket 0..4095
	attrDstNet          // destination subnet bucket 0..4095
	attrDstPort         // 0..65535
	attrPktSize         // bytes 0..1500
	attrTCPFlags        // flag combination 0..63
	attrPayload         // payload classifier output 0..255
)

type rule struct {
	name string
	x    *expr.Expression
}

func ruleSet(rng *rand.Rand, n int) []rule {
	rules := make([]rule, 0, n)
	id := expr.ID(1)
	add := func(name string, preds ...expr.Predicate) {
		rules = append(rules, rule{name: name, x: expr.MustNew(id, preds...)})
		id++
	}
	// A few hand-written signatures...
	add("null-scan", expr.Eq(attrProto, 0), expr.Eq(attrTCPFlags, 0))
	add("xmas-scan", expr.Eq(attrProto, 0), expr.Eq(attrTCPFlags, 41))
	add("dns-tunnel", expr.Eq(attrProto, 1), expr.Eq(attrDstPort, 53), expr.Ge(attrPktSize, 512))
	add("telnet-probe", expr.Eq(attrProto, 0), expr.Eq(attrDstPort, 23))
	add("odd-port-smb", expr.Eq(attrProto, 0), expr.Eq(attrPayload, 17),
		expr.None(attrDstPort, 139, 445))
	// ...plus a synthetic population shaped like real rule feeds: port
	// lists, subnet watches, size bands, payload classes.
	for len(rules) < n {
		switch rng.Intn(4) {
		case 0:
			ports := make([]expr.Value, 2+rng.Intn(6))
			for i := range ports {
				ports[i] = expr.Value(rng.Intn(65536))
			}
			add("portlist", expr.Eq(attrProto, expr.Value(rng.Intn(2))),
				expr.Any(attrDstPort, ports...))
		case 1:
			add("subnet-watch", expr.Eq(attrSrcNet, expr.Value(rng.Intn(4096))),
				expr.Ne(attrDstNet, expr.Value(rng.Intn(4096))))
		case 2:
			lo := expr.Value(rng.Intn(1400))
			add("size-band", expr.Eq(attrPayload, expr.Value(rng.Intn(256))),
				expr.Rng(attrPktSize, lo, lo+expr.Value(rng.Intn(100))))
		default:
			add("flag-combo", expr.Eq(attrProto, 0),
				expr.Eq(attrTCPFlags, expr.Value(rng.Intn(64))),
				expr.Ge(attrDstPort, 1024))
		}
	}
	return rules
}

func flow(rng *rand.Rand) *expr.Event {
	return expr.MustEvent(
		expr.P(attrProto, expr.Value(rng.Intn(3))),
		expr.P(attrSrcNet, expr.Value(rng.Intn(4096))),
		expr.P(attrDstNet, expr.Value(rng.Intn(4096))),
		expr.P(attrDstPort, expr.Value(rng.Intn(65536))),
		expr.P(attrPktSize, expr.Value(rng.Intn(1501))),
		expr.P(attrTCPFlags, expr.Value(rng.Intn(64))),
		expr.P(attrPayload, expr.Value(rng.Intn(256))),
	)
}

func main() {
	const nRules = 30000
	const nFlows = 5000
	rng := rand.New(rand.NewSource(1337))

	rules := ruleSet(rng, nRules)
	byID := make(map[expr.ID]string, len(rules))
	eng, err := apcm.New(apcm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	for _, r := range rules {
		byID[r.x.ID] = r.name
		if err := eng.Subscribe(r.x); err != nil {
			log.Fatal(err)
		}
	}
	eng.Prepare()
	fmt.Printf("loaded %d detection rules\n", len(rules))

	// Mostly background traffic, with a few crafted attack flows mixed in.
	flows := make([]*expr.Event, 0, nFlows)
	for i := 0; i < nFlows-3; i++ {
		flows = append(flows, flow(rng))
	}
	flows = append(flows,
		expr.MustEvent(expr.P(attrProto, 0), expr.P(attrSrcNet, 1), expr.P(attrDstNet, 2),
			expr.P(attrDstPort, 80), expr.P(attrPktSize, 40), expr.P(attrTCPFlags, 0), expr.P(attrPayload, 3)),
		expr.MustEvent(expr.P(attrProto, 1), expr.P(attrSrcNet, 9), expr.P(attrDstNet, 9),
			expr.P(attrDstPort, 53), expr.P(attrPktSize, 900), expr.P(attrTCPFlags, 0), expr.P(attrPayload, 7)),
		expr.MustEvent(expr.P(attrProto, 0), expr.P(attrSrcNet, 5), expr.P(attrDstNet, 6),
			expr.P(attrDstPort, 23), expr.P(attrPktSize, 60), expr.P(attrTCPFlags, 2), expr.P(attrPayload, 1)),
	)

	alertCounts := map[string]int{}
	alerts := 0
	start := time.Now()
	for _, f := range flows {
		for _, id := range eng.Match(f) {
			alertCounts[byID[id]]++
			alerts++
		}
	}
	el := time.Since(start)

	fmt.Printf("inspected %d flows in %s (%.0f flows/s), %d alerts\n\n",
		len(flows), el.Round(time.Millisecond), float64(len(flows))/el.Seconds(), alerts)
	for _, name := range []string{"null-scan", "dns-tunnel", "telnet-probe"} {
		fmt.Printf("  %-14s %d hits (crafted attack flows present: expect ≥1)\n",
			name, alertCounts[name])
	}
	st := eng.Stats()
	fmt.Printf("\nengine: %s, %d rules, %d KiB, compression %.1f preds/entry\n",
		st.Algorithm, st.Subscriptions, st.MemBytes/1024, st.CompressionRatio)
}
